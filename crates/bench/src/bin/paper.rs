//! `paper` — regenerate every table and figure of Perais & Seznec,
//! HPCA 2014, on the vpsim substrate.
//!
//! ```text
//! Usage: paper <experiment> [options]
//!
//! Experiments:
//!   table1           Predictor layout summary (Table 1)
//!   table2           Simulator configuration (Table 2)
//!   table3           Benchmark suite (Table 3)
//!   sec3-model       §3.1 analytic recovery-cost example
//!   sec3-backtoback  §3.2 back-to-back fetch statistic
//!   sec4-regfile     §4 register-file port cost model
//!   fig3             Oracle speedup upper bound
//!   fig4             Speedup, squash-at-commit (a: baseline counters, b: FPC)
//!   fig5             Speedup, selective reissue (a: baseline counters, b: FPC)
//!   fig6             VTAGE speedup/coverage, baseline vs FPC
//!   fig7             Hybrid predictors: speedup and coverage
//!   accuracy         §8.2 accuracy, baseline vs FPC
//!   recovery         §8.2.4 squash-at-commit vs selective reissue (VTAGE)
//!   ipc              Diagnostics: baseline IPC + substrate statistics
//!   ablation-vtage   VTAGE component-count sweep (offline evaluation)
//!   ablation-extended  PP-Str / D-FCM / gDiff-VTAGE vs the hybrid
//!   locality         Value-locality breakdown per benchmark (offline)
//!   counters         §5 counter width vs FPC (VTAGE)
//!   all              Every paper artifact above (extensions excluded)
//!
//! Options:
//!   --warmup N       Warm-up instructions per run   [default 50000]
//!   --measure N      Measured instructions per run  [default 200000]
//!   --scale N        Workload footprint multiplier  [default 1]
//!   --seed N         RNG seed                       [default 0x2014]
//!   --threads N      Worker threads for the simulation grids
//!                    [default: all hardware threads]
//!   --benchmarks a,b Comma-separated subset of Table 3 names
//!   --csv            Emit CSV instead of aligned text
//! ```
//!
//! Every simulation-backed experiment runs its configuration grid on the
//! `vpsim_bench::sweep` engine; `--threads` changes wall-clock time only,
//! never a byte of output.

use std::process::ExitCode;
use vpsim_bench::experiments as exp;
use vpsim_bench::RunSettings;
use vpsim_core::PredictorKind;
use vpsim_stats::table::Table;
use vpsim_uarch::RecoveryPolicy;
use vpsim_workloads::{all_benchmarks, Benchmark};

struct Options {
    settings: RunSettings,
    benches: Vec<Benchmark>,
    csv: bool,
}

fn parse_args(args: &[String]) -> Result<(Vec<String>, Options), String> {
    let mut settings = RunSettings {
        threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        ..RunSettings::default()
    };
    let mut csv = false;
    let mut names: Option<Vec<String>> = None;
    let mut experiments = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut next_u64 = |what: &str| -> Result<u64, String> {
            it.next()
                .ok_or_else(|| format!("{what} requires a value"))?
                .parse::<u64>()
                .map_err(|e| format!("{what}: {e}"))
        };
        match arg.as_str() {
            "--warmup" => settings.warmup = next_u64("--warmup")?,
            "--measure" => settings.measure = next_u64("--measure")?,
            "--scale" => settings.scale = next_u64("--scale")? as usize,
            "--seed" => settings.seed = next_u64("--seed")?,
            "--threads" => settings.threads = (next_u64("--threads")? as usize).max(1),
            "--csv" => csv = true,
            "--benchmarks" => {
                let list = it.next().ok_or("--benchmarks requires a value")?;
                names = Some(list.split(',').map(str::to_string).collect());
            }
            other if other.starts_with("--") => return Err(format!("unknown option {other}")),
            exp => experiments.push(exp.to_string()),
        }
    }
    let benches = match names {
        None => all_benchmarks(),
        Some(ns) => {
            let mut out = Vec::new();
            for n in ns {
                match vpsim_workloads::benchmark(&n) {
                    Some(b) => out.push(b),
                    None => return Err(format!("unknown benchmark {n}")),
                }
            }
            out
        }
    };
    Ok((experiments, Options { settings, benches, csv }))
}

fn emit(title: &str, table: &Table, csv: bool) {
    if csv {
        print!("{}", table.to_csv());
    } else {
        println!("== {title} ==");
        println!("{table}");
    }
}

fn run_experiment(name: &str, o: &Options) -> Result<(), String> {
    let s = &o.settings;
    let b = &o.benches;
    match name {
        "table1" => emit("Table 1: predictor layout", &exp::table1(), o.csv),
        "table2" => emit("Table 2: simulator configuration", &exp::table2(), o.csv),
        "table3" => emit("Table 3: benchmark suite", &exp::table3(b), o.csv),
        "sec3-model" => {
            emit("§3.1 analytic example (net cycles per Kinst)", &exp::sec3_model(), o.csv)
        }
        "sec3-backtoback" => {
            emit("§3.2 back-to-back eligible fetches", &exp::sec3_backtoback(s, b), o.csv)
        }
        "sec4-regfile" => emit("§4 register-file port cost", &exp::sec4_regfile(), o.csv),
        "fig3" => emit("Figure 3: oracle speedup upper bound", &exp::fig3(s, b), o.csv),
        "fig4" => {
            emit(
                "Figure 4(a): squash-at-commit, baseline counters",
                &exp::fig45(s, b, RecoveryPolicy::SquashAtCommit, false),
                o.csv,
            );
            emit(
                "Figure 4(b): squash-at-commit, FPC",
                &exp::fig45(s, b, RecoveryPolicy::SquashAtCommit, true),
                o.csv,
            );
        }
        "fig5" => {
            emit(
                "Figure 5(a): selective reissue, baseline counters",
                &exp::fig45(s, b, RecoveryPolicy::SelectiveReissue, false),
                o.csv,
            );
            emit(
                "Figure 5(b): selective reissue, FPC",
                &exp::fig45(s, b, RecoveryPolicy::SelectiveReissue, true),
                o.csv,
            );
        }
        "fig6" => emit("Figure 6: VTAGE, baseline vs FPC", &exp::fig6(s, b), o.csv),
        "fig7" => emit("Figure 7: hybrid predictors", &exp::fig7(s, b), o.csv),
        "accuracy" => emit("§8.2 accuracy, baseline vs FPC", &exp::accuracy(s, b), o.csv),
        "recovery" => emit(
            "§8.2.4 recovery comparison (VTAGE, FPC)",
            &exp::recovery_comparison(s, b, PredictorKind::Vtage),
            o.csv,
        ),
        "ipc" => emit("Diagnostics: IPC and substrate stats", &exp::ipc_diagnostics(s, b), o.csv),
        "ablation-vtage" => {
            emit("Ablation: VTAGE component count (offline)", &exp::ablation_vtage(s, b), o.csv)
        }
        "ablation-extended" => emit(
            "Ablation: extended predictors (PP-Str, D-FCM, gDiff)",
            &exp::ablation_extended(s, b),
            o.csv,
        ),
        "locality" => emit("Value locality per benchmark (offline)", &exp::locality(s, b), o.csv),
        "counters" => emit("§5 counter width vs FPC (VTAGE)", &exp::counters(s, b), o.csv),
        "all" => {
            for e in [
                "table1",
                "table2",
                "table3",
                "sec3-model",
                "sec4-regfile",
                "sec3-backtoback",
                "fig3",
                "fig4",
                "fig5",
                "fig6",
                "fig7",
                "accuracy",
                "recovery",
            ] {
                run_experiment(e, o)?;
            }
        }
        other => return Err(format!("unknown experiment {other}")),
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: paper <experiment> [options]; see the source header for details");
        return ExitCode::FAILURE;
    }
    match parse_args(&args) {
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
        Ok((experiments, options)) => {
            if experiments.is_empty() {
                eprintln!("error: no experiment named");
                return ExitCode::FAILURE;
            }
            for e in &experiments {
                if let Err(msg) = run_experiment(e, &options) {
                    eprintln!("error: {msg}");
                    return ExitCode::FAILURE;
                }
            }
            ExitCode::SUCCESS
        }
    }
}
