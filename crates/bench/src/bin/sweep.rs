//! `sweep` — expand a declarative (predictor × confidence × recovery ×
//! benchmark) grid and run it on the parallel sweep engine.
//!
//! The grid is a [`vpsim_bench::scenario::Scenario`], resolved in layers:
//! built-in defaults, then `--preset NAME` or `--scenario FILE`, then
//! `--set key=value` overrides and the dedicated flags below in
//! command-line order. `--dump-scenario` prints the fully-resolved
//! scenario (itself a loadable scenario file) instead of running.
//!
//! The no-VP baseline is always run alongside the grid so every row can
//! report a speedup. Output is merged in job-index order, so any
//! `--threads` value produces byte-identical tables.
//!
//! ```text
//! Usage: sweep [options]
//!
//! Options:
//!   --scenario FILE    Load a scenario file (key = value lines)
//!   --preset NAME      Start from a named preset (--list-presets)
//!   --set KEY=VALUE    Override one scenario key (repeatable)
//!   --dump-scenario    Print the resolved scenario and exit
//!   --list-presets     Print the preset registry and exit
//!   --threads N        Worker threads        [default: all hardware threads]
//!   --predictors LIST  Comma-separated predictor names (lvp, 2d-str, pp-str,
//!                      fcm, dfcm, vtage, vtage-2dstr, fcm-2dstr, gdiff,
//!                      sag-lvp, oracle)      [default: lvp,2d-str,fcm,vtage]
//!   --confidence LIST  baseline | fpc | full1..full8 | fpc-squash |
//!                      fpc-reissue | fpc:p0.….p6       [default: fpc]
//!   --recovery LIST    squash | reissue                [default: squash]
//!   --benchmarks LIST  Table 3 names and k:* kernels   [default: all 19]
//!   --warmup N         Warm-up instructions per run    [default 50000]
//!   --measure N        Measured instructions per run   [default 200000]
//!   --scale N          Workload footprint multiplier   [default 1]
//!   --seed N           RNG seed                        [default 0x2014]
//!   --matrix           Speedup matrix (benchmark rows × grid-point columns)
//!                      instead of the long-form table
//!   --stall-report     Attach the pipeline event tap to every job and
//!                      print per-cell stall attribution (one row per
//!                      cell: cycles, per-cause shares, mean occupancies)
//!                      instead of the speedup table; every cell is
//!                      conservation-checked against its RunResult
//!   --csv              Emit CSV instead of aligned text
//!   --json             Emit JSON (array of row objects) instead of text
//!   --no-trace-cache   Re-execute each workload functionally per job
//!                      instead of capture-once/replay-many (byte-identical
//!                      output; sugar for --set trace_cache=off)
//!   --sample           Interval sampling: fast-forward the trace through a
//!                      functional warmer and replay only systematically
//!                      selected intervals in detail — an IPC estimate at a
//!                      fraction of the replay cost (sugar for --set
//!                      sample=on; tune with --set sample.intervals=K,
//!                      sample.period=N, sample.warmup=W)
//!   --timing-json F    Write capture/replay/total wall-clock, job/µop
//!                      counts, store hit/miss counters and ns-per-µop
//!                      to F as JSON (see BENCH_sweep.json)
//!   --store DIR        Persistent stores under DIR: captured traces
//!                      (DIR/traces) and finished per-cell results
//!                      (DIR/results) survive the process and are shared
//!                      with other runs — a finished cell is never
//!                      simulated twice. Output is byte-identical with or
//!                      without the stores.
//!   --remote ADDR      Submit the resolved scenario to a vpsim-serve job
//!                      server at ADDR (host:port) instead of running
//!                      locally. Streams per-cell progress to stderr; the
//!                      table on stdout is byte-identical to a local run.
//!                      `ERR server busy` replies are retried with
//!                      jittered exponential backoff, honouring the
//!                      server's RETRY-AFTER hint.
//!   --workers LIST     Comma-separated vpsim-serve addresses. The grid is
//!                      sharded across them (worker i simulates cells with
//!                      index % n == i) and the raw per-cell results are
//!                      merged back in job-index order, so the table on
//!                      stdout is byte-identical to a local or single
//!                      --remote run. Point every worker at the same
//!                      --store directory to share traces and finished
//!                      cells.
//! ```
//!
//! Example: compare VTAGE and the hybrid under both recovery schemes on
//! four benchmarks, on a narrow core, using four workers:
//!
//! ```text
//! sweep --threads 4 --predictors vtage,vtage-2dstr --recovery squash,reissue \
//!       --benchmarks gzip,mcf,h264ref,lbm --set core.fetch_width=4 --matrix
//! ```

use std::process::ExitCode;
use vpsim_bench::protocol::{Format, View};
use vpsim_bench::remote;
use vpsim_bench::scenario::{presets, resolve_cli_base, Scenario};
use vpsim_bench::store::Stores;

struct Options {
    scenario: Scenario,
    matrix: bool,
    stall_report: bool,
    csv: bool,
    json: bool,
    dump: bool,
    list_presets: bool,
    timing_json: Option<String>,
    store: Option<String>,
    remote: Option<String>,
    workers: Vec<String>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut base = Scenario::default();
    // CLI default: use every hardware thread (a scenario file or a later
    // --threads flag still overrides this).
    base.settings.threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (mut scenario, rest, _) = resolve_cli_base(base, args)?;
    let mut matrix = false;
    let mut stall_report = false;
    let mut csv = false;
    let mut json = false;
    let mut dump = false;
    let mut list_presets = false;
    let mut timing_json = None;
    let mut store = None;
    let mut remote = None;
    let mut workers = Vec::new();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        let mut val = || -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{arg} requires a value"))
        };
        match arg.as_str() {
            "--set" => scenario.set(val()?)?,
            "--matrix" => matrix = true,
            "--stall-report" => stall_report = true,
            "--csv" => csv = true,
            "--json" => json = true,
            "--dump-scenario" => dump = true,
            "--list-presets" => list_presets = true,
            "--no-trace-cache" => scenario.apply("trace_cache", "off")?,
            "--sample" => scenario.apply("sample", "on")?,
            "--timing-json" => timing_json = Some(val()?.clone()),
            "--store" => store = Some(val()?.clone()),
            "--remote" => remote = Some(val()?.clone()),
            "--workers" => {
                workers = val()?.split(',').map(|a| a.trim().to_string()).collect();
                if workers.iter().any(String::is_empty) {
                    return Err("--workers takes a comma-separated list of host:port".into());
                }
            }
            // Dedicated flags are sugar for --set with the same key.
            flag @ ("--threads" | "--predictors" | "--confidence" | "--recovery"
            | "--benchmarks" | "--warmup" | "--measure" | "--scale" | "--seed") => {
                scenario.apply(&flag[2..], val()?)?
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    if stall_report && matrix {
        return Err("--stall-report prints per-cell attribution; --matrix does not apply".into());
    }
    if stall_report && timing_json.is_some() {
        return Err("--stall-report runs do not produce a --timing-json record".into());
    }
    if csv && json {
        return Err("--csv and --json are mutually exclusive".into());
    }
    if remote.is_some() && !workers.is_empty() {
        return Err("--remote and --workers are mutually exclusive; --workers shards".into());
    }
    if remote.is_some() || !workers.is_empty() {
        if stall_report {
            return Err("--stall-report runs locally; it cannot be combined with --remote".into());
        }
        if timing_json.is_some() {
            return Err("--timing-json measures a local run; use the server's STATS line".into());
        }
        if store.is_some() {
            return Err("--store configures local stores; the server manages its own".into());
        }
    }
    scenario.validate()?;
    Ok(Options {
        scenario,
        matrix,
        stall_report,
        csv,
        json,
        dump,
        list_presets,
        timing_json,
        store,
        remote,
        workers,
    })
}

fn render(table: &vpsim_stats::table::Table, o: &Options) -> String {
    if o.csv {
        table.to_csv()
    } else if o.json {
        table.to_json()
    } else {
        table.to_ascii()
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: sweep [options]; see the source header for details");
            return ExitCode::FAILURE;
        }
    };
    if options.list_presets {
        for (name, description) in presets() {
            println!("{name:<20} {description}");
        }
        return ExitCode::SUCCESS;
    }
    if options.dump {
        print!("{}", options.scenario);
        return ExitCode::SUCCESS;
    }
    if options.remote.is_some() || !options.workers.is_empty() {
        let view = if options.matrix { View::Matrix } else { View::Long };
        let format = if options.csv {
            Format::Csv
        } else if options.json {
            Format::Json
        } else {
            Format::Ascii
        };
        let mut progress = |cell: &str| eprintln!("{cell}");
        let outcome = match &options.remote {
            Some(addr) => remote::submit(addr, &options.scenario, view, format, &mut progress),
            None => remote::submit_workers(
                &options.workers,
                &options.scenario,
                view,
                format,
                &mut progress,
            ),
        };
        return match outcome {
            Ok(outcome) => {
                print!("{}", outcome.table);
                if !outcome.stats.is_empty() {
                    eprintln!("{}", outcome.stats);
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let mut spec = options.scenario.to_spec();
    if let Some(dir) = &options.store {
        spec.stores = match Stores::open(dir) {
            Ok(stores) => stores,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
    }
    if options.stall_report {
        let results = spec.run_stall_report();
        print!("{}", render(&results.table(), &options));
        return ExitCode::SUCCESS;
    }
    let results = spec.run();
    let table = if options.matrix { results.matrix() } else { results.table() };
    if options.csv || options.json {
        print!("{}", render(&table, &options));
    } else {
        eprintln!(
            "{} runs ({} benchmark(s) x {} grid point(s) + baseline) on {} thread(s)",
            spec.job_count(),
            spec.benches.len(),
            spec.points().len(),
            spec.settings.threads,
        );
        println!("{table}");
        let t = &results.timing;
        eprintln!(
            "wall-clock: {:.2}s total ({:.2}s capture of {} trace(s), {:.2}s {}, {:.0} ns/µop)",
            t.total.as_secs_f64(),
            t.capture.as_secs_f64(),
            t.captures,
            t.replay.as_secs_f64(),
            if t.trace_cache { "replay" } else { "inline simulation (trace cache off)" },
            t.ns_per_uop(),
        );
        if t.sampled {
            eprintln!(
                "sampling: {} interval(s) replayed in detail ({} µops), {} µops fast-forwarded",
                t.intervals_replayed, t.uops, t.ff_uops,
            );
        }
    }
    if let Some(path) = &options.timing_json {
        if let Err(e) = std::fs::write(path, results.timing.to_json()) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
