//! `sweep` — expand a declarative (predictor × confidence × recovery ×
//! benchmark) grid and run it on the parallel sweep engine.
//!
//! The no-VP baseline is always run alongside the grid so every row can
//! report a speedup. Output is merged in job-index order, so any
//! `--threads` value produces byte-identical tables.
//!
//! ```text
//! Usage: sweep [options]
//!
//! Options:
//!   --threads N        Worker threads        [default: all hardware threads]
//!   --predictors LIST  Comma-separated predictor names (lvp, 2d-str, pp-str,
//!                      fcm, dfcm, vtage, vtage-2dstr, fcm-2dstr, gdiff,
//!                      sag-lvp, oracle)      [default: lvp,2d-str,fcm,vtage]
//!   --confidence LIST  baseline | fpc | full1..full8   [default: fpc]
//!   --recovery LIST    squash | reissue                [default: squash]
//!   --benchmarks LIST  Subset of Table 3 names         [default: all 19]
//!   --warmup N         Warm-up instructions per run    [default 50000]
//!   --measure N        Measured instructions per run   [default 200000]
//!   --scale N          Workload footprint multiplier   [default 1]
//!   --seed N           RNG seed                        [default 0x2014]
//!   --matrix           Speedup matrix (benchmark rows × grid-point columns)
//!                      instead of the long-form table
//!   --csv              Emit CSV instead of aligned text
//! ```
//!
//! Example: compare VTAGE and the hybrid under both recovery schemes on
//! four benchmarks, using four workers:
//!
//! ```text
//! sweep --threads 4 --predictors vtage,vtage-2dstr --recovery squash,reissue \
//!       --benchmarks gzip,mcf,h264ref,lbm --matrix
//! ```

use std::process::ExitCode;
use vpsim_bench::sweep::{SchemeChoice, SweepSpec};
use vpsim_bench::RunSettings;
use vpsim_core::PredictorKind;
use vpsim_uarch::RecoveryPolicy;
use vpsim_workloads::{all_benchmarks, Benchmark};

struct Options {
    spec: SweepSpec,
    matrix: bool,
    csv: bool,
}

fn parse_list<T: std::str::FromStr<Err = String>>(
    list: &str,
    what: &str,
) -> Result<Vec<T>, String> {
    list.split(',')
        .map(|item| item.trim().parse().map_err(|e: String| format!("{what}: {e}")))
        .collect()
}

fn parse_recovery(list: &str) -> Result<Vec<RecoveryPolicy>, String> {
    list.split(',')
        .map(|item| match item.trim() {
            "squash" => Ok(RecoveryPolicy::SquashAtCommit),
            "reissue" => Ok(RecoveryPolicy::SelectiveReissue),
            other => Err(format!("unknown recovery {other} (squash | reissue)")),
        })
        .collect()
}

fn parse_benchmarks(list: &str) -> Result<Vec<Benchmark>, String> {
    list.split(',')
        .map(|name| {
            vpsim_workloads::benchmark(name.trim())
                .ok_or_else(|| format!("unknown benchmark {name}"))
        })
        .collect()
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut settings = RunSettings {
        threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        ..RunSettings::default()
    };
    let mut predictors = PredictorKind::PAPER_SET.to_vec();
    let mut schemes = vec![SchemeChoice::Fpc];
    let mut recoveries = vec![RecoveryPolicy::SquashAtCommit];
    let mut benches = all_benchmarks();
    let mut matrix = false;
    let mut csv = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = || -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{arg} requires a value"))
        };
        match arg.as_str() {
            "--threads" => {
                settings.threads =
                    val()?.parse::<usize>().map_err(|e| format!("--threads: {e}"))?.max(1)
            }
            "--predictors" => predictors = parse_list(val()?, "--predictors")?,
            "--confidence" => schemes = parse_list(val()?, "--confidence")?,
            "--recovery" => recoveries = parse_recovery(val()?)?,
            "--benchmarks" => benches = parse_benchmarks(val()?)?,
            "--warmup" => settings.warmup = val()?.parse().map_err(|e| format!("--warmup: {e}"))?,
            "--measure" => {
                settings.measure = val()?.parse().map_err(|e| format!("--measure: {e}"))?
            }
            "--scale" => settings.scale = val()?.parse().map_err(|e| format!("--scale: {e}"))?,
            "--seed" => settings.seed = val()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--matrix" => matrix = true,
            "--csv" => csv = true,
            other => return Err(format!("unknown option {other}")),
        }
    }
    let spec = SweepSpec { settings, predictors, schemes, recoveries, benches };
    Ok(Options { spec, matrix, csv })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: sweep [options]; see the source header for details");
            return ExitCode::FAILURE;
        }
    };
    let results = options.spec.run();
    let table = if options.matrix { results.matrix() } else { results.table() };
    if options.csv {
        print!("{}", table.to_csv());
    } else {
        eprintln!(
            "{} runs ({} benchmark(s) x {} grid point(s) + baseline) on {} thread(s)",
            options.spec.job_count(),
            options.spec.benches.len(),
            options.spec.points().len(),
            options.spec.settings.threads,
        );
        println!("{table}");
    }
    ExitCode::SUCCESS
}
