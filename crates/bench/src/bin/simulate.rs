//! `simulate` — run one benchmark (or microkernel) under one configuration
//! and print the full result record.
//!
//! ```text
//! Usage: simulate <workload> [options]
//!
//! Workloads: any Table 3 name (gzip, mcf, …) or a microkernel:
//!   k:tight, k:strided, k:chase, k:constant, k:branchdep, k:fpreduce,
//!   k:calls, k:randbranch, k:matmul
//!
//! Options:
//!   --predictor P    lvp | stride | pp-str | fcm | dfcm | vtage |
//!                    vtage-2dstr | fcm-2dstr | gdiff | oracle  [default none]
//!   --counters C     baseline | fpc                            [default fpc]
//!   --recovery R     squash | reissue                          [default squash]
//!   --warmup N / --measure N / --scale N / --seed N
//! ```

use std::process::ExitCode;
use vpsim_bench::RunSettings;
use vpsim_core::{ConfidenceScheme, PredictorKind};
use vpsim_isa::Program;
use vpsim_uarch::{RecoveryPolicy, RunResult, Simulator, VpConfig};
use vpsim_workloads::{benchmark, microkernels, WorkloadParams};

fn workload(name: &str, params: &WorkloadParams) -> Option<Program> {
    if let Some(b) = benchmark(name) {
        return Some((b.build)(params));
    }
    Some(match name {
        "k:tight" => microkernels::tight_loop(),
        "k:strided" => microkernels::strided_loop(256 * params.scale, 1),
        "k:chase" => microkernels::pointer_chase(4096 * params.scale),
        "k:constant" => microkernels::constant_stream(),
        "k:branchdep" => microkernels::branch_correlated_values(),
        "k:fpreduce" => microkernels::fp_reduction(256 * params.scale),
        "k:calls" => microkernels::call_ladder(),
        "k:randbranch" => microkernels::random_branches(),
        "k:matmul" => microkernels::matmul(8 * params.scale),
        _ => return None,
    })
}

fn print_result(r: &RunResult) {
    let n = r.metrics.instructions;
    println!("instructions      {n}");
    println!("cycles            {}", r.metrics.cycles);
    println!("IPC               {:.3}", r.metrics.ipc());
    println!("branch MPKI       {:.2}", r.branch.mpki(n));
    println!("direction acc.    {:.2}%", r.branch.direction_accuracy() * 100.0);
    println!(
        "L1I / L1D / L2 MPKI  {:.1} / {:.1} / {:.1}",
        r.l1i.mpki(n),
        r.l1d.mpki(n),
        r.l2.mpki(n)
    );
    println!("L2 prefetches     {} ({} useful)", r.l2.prefetches, r.l2.useful_prefetches);
    println!("back-to-back      {:.1}%", r.back_to_back.fraction() * 100.0);
    if r.vp.eligible > 0 {
        println!("VP eligible       {}", r.vp.eligible);
        println!("VP coverage       {:.1}%", r.vp.coverage() * 100.0);
        if r.vp.used > 0 {
            println!("VP accuracy       {:.3}%", r.vp.accuracy() * 100.0);
        }
        println!(
            "VP mispredicted   {} ({} harmless)",
            r.vp.mispredicted, r.vp.harmless_mispredictions
        );
        println!("VP squashes       {}", r.vp_squashes);
        println!("reissued µops     {}", r.reissued_uops);
    }
    println!("order violations  {}", r.memory_order_violations);
    let st = &r.stalls;
    println!(
        "fetch stalls      branch {} / redirect {} / queue {}",
        st.fetch_branch_cycles, st.fetch_redirect_cycles, st.fetch_queue_full_cycles
    );
    println!(
        "dispatch stalls   rob {} / iq {} / lq {} / sq {} / prf {}",
        st.dispatch_rob_cycles,
        st.dispatch_iq_cycles,
        st.dispatch_lq_cycles,
        st.dispatch_sq_cycles,
        st.dispatch_prf_cycles
    );
    println!("commit-idle       {} of {} cycles", st.commit_idle_cycles, r.metrics.cycles);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((name, rest)) = args.split_first() else {
        eprintln!("usage: simulate <workload> [options] (see source header)");
        return ExitCode::FAILURE;
    };
    let mut settings = RunSettings::default();
    let mut predictor: Option<PredictorKind> = None;
    let mut scheme = ConfidenceScheme::fpc_squash();
    let mut recovery = RecoveryPolicy::SquashAtCommit;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        let mut val = || it.next().cloned().ok_or_else(|| format!("{arg} requires a value"));
        let parsed: Result<(), String> = (|| {
            match arg.as_str() {
                "--predictor" => predictor = Some(val()?.parse().map_err(|e: String| e)?),
                "--counters" => {
                    scheme = match val()?.as_str() {
                        "baseline" => ConfidenceScheme::baseline(),
                        "fpc" => scheme.clone(),
                        other => return Err(format!("unknown counters {other}")),
                    }
                }
                "--recovery" => {
                    recovery = match val()?.as_str() {
                        "squash" => RecoveryPolicy::SquashAtCommit,
                        "reissue" => RecoveryPolicy::SelectiveReissue,
                        other => return Err(format!("unknown recovery {other}")),
                    }
                }
                "--warmup" => settings.warmup = val()?.parse().map_err(|e| format!("{e}"))?,
                "--measure" => settings.measure = val()?.parse().map_err(|e| format!("{e}"))?,
                "--scale" => settings.scale = val()?.parse().map_err(|e| format!("{e}"))?,
                "--seed" => settings.seed = val()?.parse().map_err(|e| format!("{e}"))?,
                other => return Err(format!("unknown option {other}")),
            }
            Ok(())
        })();
        if let Err(e) = parsed {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    // Pick the FPC vector to match the recovery scheme (paper §5) unless
    // the baseline counters were requested.
    if scheme != ConfidenceScheme::baseline() {
        scheme = match recovery {
            RecoveryPolicy::SquashAtCommit => ConfidenceScheme::fpc_squash(),
            RecoveryPolicy::SelectiveReissue => ConfidenceScheme::fpc_reissue(),
        };
    }
    let Some(program) = workload(name, &settings.params()) else {
        eprintln!("error: unknown workload {name}");
        return ExitCode::FAILURE;
    };
    let mut config = settings.core();
    if let Some(kind) = predictor {
        config = config.with_vp(VpConfig { kind, scheme, recovery });
        println!("workload {name}, predictor {}, {:?}", kind.label(), recovery);
    } else {
        println!("workload {name}, no value prediction");
    }
    let result =
        Simulator::new(config).run_with_warmup(&program, settings.warmup, settings.measure);
    print_result(&result);
    ExitCode::SUCCESS
}
