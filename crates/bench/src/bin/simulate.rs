//! `simulate` — run one workload under one configuration and print the
//! full result record.
//!
//! ```text
//! Usage: simulate [workload] [options]
//!
//! Workloads: any Table 3 name (gzip, mcf, …) or a microkernel:
//!   k:tight, k:strided, k:chase, k:constant, k:branchdep, k:fpreduce,
//!   k:calls, k:randbranch, k:matmul
//!
//! Options:
//!   --scenario FILE  Load a scenario file; simulate runs its first
//!                    workload and first grid point
//!   --preset NAME    Start from a named scenario preset
//!   --set KEY=VALUE  Override one scenario key (repeatable)
//!   --dump-scenario  Print the resolved scenario and exit
//!   --predictor P    lvp | stride | pp-str | fcm | dfcm | vtage |
//!                    vtage-2dstr | fcm-2dstr | gdiff | sag-lvp | oracle
//!                                                             [default none]
//!   --counters C     baseline | fpc | full1..full8 | fpc-squash |
//!                    fpc-reissue | fpc:p0.….p6                 [default fpc]
//!   --recovery R     squash | reissue                          [default squash]
//!   --warmup N / --measure N / --scale N / --seed N
//!   --stall-report   Attach the pipeline event tap and print per-cause
//!                    stall attribution (every measured cycle charged to
//!                    exactly one cause) plus mean queue occupancies
//!   --cycle-log N    Keep the last N tap events in a ring buffer and
//!                    print them after the result (implies the tap)
//!   --no-trace-cache Execute functionally inline instead of capturing a
//!                    trace and replaying it (byte-identical output)
//!   --sample         Interval sampling: replay only systematically
//!                    selected intervals in detail and print the sampled
//!                    IPC estimate with its 95% confidence interval
//!                    (sugar for --set sample=on; tune with --set
//!                    sample.intervals=K, sample.period=N, sample.warmup=W;
//!                    ignored under --stall-report / --cycle-log)
//! ```
//!
//! Everything resolves through a `vpsim_bench::scenario::Scenario` (the
//! positional workload overrides its benchmark list, `--predictor` its
//! predictor axis, and so on), so flag and scenario spellings of the same
//! configuration produce byte-identical output. A scenario with several
//! workloads or grid points runs the first of each; use `sweep` for the
//! whole grid.

use std::process::ExitCode;
use vpsim_bench::scenario::{resolve_cli_base, Scenario};
use vpsim_stats::stall::{CycleCause, StallReport};
use vpsim_stats::table::{fmt_f, fmt_pct, Table};
use vpsim_uarch::tap::{check_conservation, CycleLog, StallTally};
use vpsim_uarch::RunResult;

struct Flags {
    dump: bool,
    stall_report: bool,
    cycle_log: Option<usize>,
}

fn parse_args(args: &[String]) -> Result<(Scenario, Flags), String> {
    // Flag default: no value prediction until --predictor (or a scenario
    // grid) asks for it. Bare `simulate` (no selector) still requires a
    // workload argument.
    let base = Scenario { predictors: Vec::new(), ..Scenario::default() };
    let (mut scenario, rest, has_base) = resolve_cli_base(base, args)?;
    let mut workload: Option<String> = None;
    let mut flags = Flags { dump: false, stall_report: false, cycle_log: None };
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        let mut val = || -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{arg} requires a value"))
        };
        match arg.as_str() {
            "--set" => scenario.set(val()?)?,
            "--dump-scenario" => flags.dump = true,
            "--stall-report" => flags.stall_report = true,
            "--cycle-log" => {
                let n: usize =
                    val()?.parse().map_err(|e| format!("--cycle-log wants a count: {e}"))?;
                if n == 0 {
                    return Err("--cycle-log must keep at least one event".into());
                }
                flags.cycle_log = Some(n);
            }
            "--no-trace-cache" => scenario.apply("trace_cache", "off")?,
            "--sample" => scenario.apply("sample", "on")?,
            // Single-valued sugar for the grid axes.
            "--predictor" => scenario.apply("predictors", val()?)?,
            "--counters" => scenario.apply("confidence", val()?)?,
            "--recovery" => scenario.apply("recovery", val()?)?,
            flag @ ("--warmup" | "--measure" | "--scale" | "--seed") => {
                scenario.apply(&flag[2..], val()?)?
            }
            other if other.starts_with("--") => return Err(format!("unknown option {other}")),
            name => match workload {
                None => workload = Some(name.to_string()),
                Some(_) => return Err(format!("unexpected extra workload {name}")),
            },
        }
    }
    match workload {
        Some(name) => scenario.apply("benchmarks", &name)?,
        None if has_base => {}
        None => return Err("no workload named (and no --scenario/--preset)".into()),
    }
    scenario.validate()?;
    Ok((scenario, flags))
}

/// Vertical per-cause view of a [`StallReport`]: one row per cause with
/// its cycle count and share of the measured window.
fn stall_table(report: &StallReport) -> Table {
    let mut t = Table::new(vec!["Cause".into(), "Cycles".into(), "Share".into()]);
    for &cause in CycleCause::ALL.iter() {
        t.row(vec![
            cause.label().into(),
            report.cause_cycles(cause).to_string(),
            fmt_pct(report.fraction(cause), 2),
        ]);
    }
    t.row(vec!["total".into(), report.total_cycles().to_string(), fmt_pct(1.0, 2)]);
    t
}

fn print_result(r: &RunResult) {
    let n = r.metrics.instructions;
    println!("instructions      {n}");
    println!("cycles            {}", r.metrics.cycles);
    println!("IPC               {:.3}", r.metrics.ipc());
    println!("branch MPKI       {:.2}", r.branch.mpki(n));
    println!("direction acc.    {:.2}%", r.branch.direction_accuracy() * 100.0);
    println!(
        "L1I / L1D / L2 MPKI  {:.1} / {:.1} / {:.1}",
        r.l1i.mpki(n),
        r.l1d.mpki(n),
        r.l2.mpki(n)
    );
    println!("L2 prefetches     {} ({} useful)", r.l2.prefetches, r.l2.useful_prefetches);
    println!("back-to-back      {:.1}%", r.back_to_back.fraction() * 100.0);
    if r.vp.eligible > 0 {
        println!("VP eligible       {}", r.vp.eligible);
        println!("VP coverage       {:.1}%", r.vp.coverage() * 100.0);
        if r.vp.used > 0 {
            println!("VP accuracy       {:.3}%", r.vp.accuracy() * 100.0);
        }
        println!(
            "VP mispredicted   {} ({} harmless)",
            r.vp.mispredicted, r.vp.harmless_mispredictions
        );
        println!("VP squashes       {}", r.vp_squashes);
        println!("reissued µops     {}", r.reissued_uops);
    }
    println!("order violations  {}", r.memory_order_violations);
    let st = &r.stalls;
    println!(
        "fetch stalls      branch {} / redirect {} / queue {}",
        st.fetch_branch_cycles, st.fetch_redirect_cycles, st.fetch_queue_full_cycles
    );
    println!(
        "dispatch stalls   rob {} / iq {} / lq {} / sq {} / prf {}",
        st.dispatch_rob_cycles,
        st.dispatch_iq_cycles,
        st.dispatch_lq_cycles,
        st.dispatch_sq_cycles,
        st.dispatch_prf_cycles
    );
    println!("commit-idle       {} of {} cycles", st.commit_idle_cycles, r.metrics.cycles);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (scenario, flags) = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: simulate [workload] [options] (see source header)");
            return ExitCode::FAILURE;
        }
    };
    if flags.dump {
        print!("{scenario}");
        return ExitCode::SUCCESS;
    }
    let bench = scenario.benches[0];
    if scenario.benches.len() > 1 {
        eprintln!("note: scenario lists {} workloads; running {}", scenario.benches.len(), bench);
    }
    let points = scenario.grid_points();
    if points.len() > 1 {
        eprintln!("note: scenario defines {} grid points; running {}", points.len(), points[0]);
    }
    let mut config = scenario.core_config();
    match points.first() {
        Some(point) => {
            config = config.with_vp(point.vp_config());
            println!("workload {}, predictor {}, {:?}", bench, point.kind.label(), point.recovery);
        }
        None => println!("workload {bench}, no value prediction"),
    }
    // `run_job` resolves through the trace layer (capture once, replay)
    // unless the scenario turned the cache off; the result is
    // byte-identical on both paths — with or without the tap attached.
    if flags.stall_report || flags.cycle_log.is_some() {
        if scenario.settings.sample.is_some() {
            eprintln!("note: sampling is ignored with the event tap; running the full windows");
        }
        let keep = flags.cycle_log.unwrap_or(1);
        let mut sink = (StallTally::default(), CycleLog::with_capacity(keep));
        let result = scenario.settings.run_job_with_sink(&bench, config, &mut sink);
        print_result(&result);
        let report = sink.0.measured();
        if let Err(violation) = check_conservation(&result, &report) {
            eprintln!("error: stall conservation broken: {violation}");
            return ExitCode::FAILURE;
        }
        if flags.stall_report {
            println!();
            println!("stall attribution (measured window)");
            print!("{}", stall_table(&report));
            println!(
                "mean occupancy    ROB {} / IQ {} / LQ {} / SQ {} / FQ {}",
                fmt_f(report.mean_rob(), 1),
                fmt_f(report.mean_iq(), 1),
                fmt_f(report.mean_lq(), 1),
                fmt_f(report.mean_sq(), 1),
                fmt_f(report.mean_fq(), 1),
            );
        }
        if let Some(n) = flags.cycle_log {
            println!();
            println!("last {} of {} tap events", sink.1.tail(n).len(), sink.1.total_events());
            print!("{}", sink.1.render_tail(n));
        }
    } else if scenario.settings.sample.is_some() {
        let settings = &scenario.settings;
        let trace = settings.capture(&bench, settings.trace_budget(&config));
        let sampled = settings.run_trace_sampled(&trace, config);
        print_result(&sampled.combined());
        println!();
        match vpsim_stats::sample::confidence_interval(&sampled.interval_ipcs()) {
            Some(est) => {
                println!(
                    "sampled IPC       {:.3} ± {:.3} (95% CI over {} interval(s), \
                     ±{:.2}% relative)",
                    est.mean,
                    est.half_width,
                    sampled.intervals_replayed(),
                    est.relative_error() * 100.0,
                );
                println!(
                    "sampling cost     {} detailed µops, {} fast-forwarded",
                    sampled.detailed_uops, sampled.ff_uops
                );
            }
            None => println!("sampled IPC       no intervals replayed (trace too short)"),
        }
    } else {
        let result = scenario.settings.run_job(&bench, config);
        print_result(&result);
    }
    ExitCode::SUCCESS
}
