//! `sweep --remote` client: submit a scenario to a running `vpsim-serve`
//! job server and collect the streamed response.
//!
//! The client side of [`crate::protocol`]: it renders the scenario to its
//! canonical text, streams per-cell `CELL` lines to a progress callback
//! as the server completes them (strict job-index order), and returns the
//! final rendered table — byte-identical to what a local `sweep` run
//! would print to stdout — plus the server's `STATS` diagnostics line.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

use crate::protocol::{self, Format, View};
use crate::scenario::Scenario;

/// Everything a successful remote submission returns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteOutcome {
    /// The rendered table, byte-identical to a local run's stdout.
    pub table: String,
    /// The server's `STATS …` diagnostics line.
    pub stats: String,
    /// Grid cells in the submission (the server's `OK` count).
    pub cells: usize,
}

fn connect(addr: &str) -> Result<(BufReader<TcpStream>, TcpStream), String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let reader =
        BufReader::new(stream.try_clone().map_err(|e| format!("cannot clone connection: {e}"))?);
    Ok((reader, stream))
}

fn read_line(reader: &mut BufReader<TcpStream>) -> Result<String, String> {
    let mut line = String::new();
    let n = reader.read_line(&mut line).map_err(|e| format!("connection error: {e}"))?;
    if n == 0 {
        return Err("server closed the connection".into());
    }
    Ok(line.trim_end_matches(['\r', '\n']).to_string())
}

/// Submit `scenario` to the server at `addr` and collect the response.
/// `progress` is invoked once per streamed `CELL` line, in job-index
/// order, as the server completes cells. A server-side `ERR` (e.g. a
/// malformed scenario) comes back as this function's `Err`.
pub fn submit(
    addr: &str,
    scenario: &Scenario,
    view: View,
    format: Format,
    mut progress: impl FnMut(&str),
) -> Result<RemoteOutcome, String> {
    let (mut reader, mut stream) = connect(addr)?;
    let request =
        format!("{}\n{}{}\n", protocol::submit_line(view, format), scenario, protocol::END_MARKER);
    stream.write_all(request.as_bytes()).map_err(|e| format!("cannot send request: {e}"))?;
    stream.flush().map_err(|e| format!("cannot send request: {e}"))?;

    let first = read_line(&mut reader)?;
    let cells = match first.split_once(' ') {
        Some(("OK", n)) => n
            .parse::<usize>()
            .map_err(|_| format!("malformed acknowledgement from server: {first}"))?,
        Some(("ERR", msg)) => return Err(format!("server rejected the scenario: {msg}")),
        _ => return Err(format!("unexpected reply from server: {first}")),
    };
    let mut table = None;
    let mut stats = None;
    loop {
        let line = read_line(&mut reader)?;
        if line == protocol::DONE {
            break;
        } else if line.starts_with("CELL ") {
            progress(&line);
        } else if let Some(n) = line.strip_prefix("TABLE ") {
            let nbytes: usize =
                n.parse().map_err(|_| format!("malformed table header from server: {line}"))?;
            let mut buf = vec![0u8; nbytes];
            reader.read_exact(&mut buf).map_err(|e| format!("truncated table payload: {e}"))?;
            table = Some(String::from_utf8(buf).map_err(|e| format!("non-UTF-8 table: {e}"))?);
        } else if line.starts_with("STATS ") {
            stats = Some(line);
        } else if let Some(msg) = line.strip_prefix("ERR ") {
            return Err(format!("server error: {msg}"));
        } else {
            return Err(format!("unexpected line from server: {line}"));
        }
    }
    Ok(RemoteOutcome {
        table: table.ok_or("server finished without sending a table")?,
        stats: stats.unwrap_or_default(),
        cells,
    })
}

/// Liveness probe: `PING` → `PONG`.
pub fn ping(addr: &str) -> Result<(), String> {
    let (mut reader, mut stream) = connect(addr)?;
    stream.write_all(b"PING\n").map_err(|e| format!("cannot send PING: {e}"))?;
    match read_line(&mut reader)?.as_str() {
        protocol::PONG => Ok(()),
        other => Err(format!("unexpected PING reply: {other}")),
    }
}

/// Ask the server at `addr` to shut down gracefully (`SHUTDOWN` → `BYE`).
pub fn shutdown(addr: &str) -> Result<(), String> {
    let (mut reader, mut stream) = connect(addr)?;
    stream.write_all(b"SHUTDOWN\n").map_err(|e| format!("cannot send SHUTDOWN: {e}"))?;
    match read_line(&mut reader)?.as_str() {
        protocol::BYE => Ok(()),
        other => Err(format!("unexpected SHUTDOWN reply: {other}")),
    }
}
