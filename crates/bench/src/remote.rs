//! `sweep --remote` client: submit a scenario to a running `vpsim-serve`
//! job server and collect the streamed response.
//!
//! The client side of [`crate::protocol`]: it renders the scenario to its
//! canonical text, streams per-cell `CELL` lines to a progress callback
//! as the server completes them (strict job-index order), and returns the
//! final rendered table — byte-identical to what a local `sweep` run
//! would print to stdout — plus the server's `STATS` diagnostics line.
//!
//! A busy server (`ERR server busy … RETRY-AFTER <ms>`) is retried with
//! bounded exponential backoff and jitter; any other error is final. The
//! multi-worker mode ([`submit_workers`]) splits one scenario into
//! `shard i/n` submissions across several servers, collects each shard's
//! raw `RESULT` frames, merges them by cell index and renders the table
//! locally — byte-identical to a single local run.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::protocol::{self, Format, View};
use crate::scenario::Scenario;
use vpsim_uarch::RunResult;

/// Everything a successful remote submission returns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteOutcome {
    /// The rendered table, byte-identical to a local run's stdout.
    pub table: String,
    /// The server's `STATS …` diagnostics line.
    pub stats: String,
    /// Grid cells in the submission (the server's `OK` count).
    pub cells: usize,
}

fn connect(addr: &str) -> Result<(BufReader<TcpStream>, TcpStream), String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let reader =
        BufReader::new(stream.try_clone().map_err(|e| format!("cannot clone connection: {e}"))?);
    Ok((reader, stream))
}

fn read_line(reader: &mut BufReader<TcpStream>) -> Result<String, String> {
    let mut line = String::new();
    let n = reader.read_line(&mut line).map_err(|e| format!("connection error: {e}"))?;
    if n == 0 {
        return Err("server closed the connection".into());
    }
    Ok(line.trim_end_matches(['\r', '\n']).to_string())
}

/// One shard's worth of a multi-worker submission: the raw per-cell
/// counters plus diagnostics, before the client-side merge.
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    /// `(cell index, counters)` pairs, ascending by index.
    pub results: Vec<(usize, RunResult)>,
    /// The streamed `CELL` progress lines, in this shard's index order.
    pub cell_lines: Vec<String>,
    /// The server's `STATS …` diagnostics line.
    pub stats: String,
    /// Cells in this shard (the server's `OK` count).
    pub cells: usize,
}

/// Why one submission attempt failed: busy servers are retryable, every
/// other failure is final.
enum SubmitError {
    Busy { retry_after: Option<u64>, msg: String },
    Fatal(String),
}

fn classify_rejection(msg: &str) -> SubmitError {
    if msg.contains("server busy") {
        SubmitError::Busy { retry_after: protocol::parse_retry_after(msg), msg: msg.to_string() }
    } else {
        SubmitError::Fatal(format!("server rejected the scenario: {msg}"))
    }
}

/// Attempts per submission before a persistently busy server becomes an
/// error. With the 100 ms base and ×2 growth, the worst case sleeps
/// roughly 100+200+400+800+1600 ms ≈ 3 s (before jitter).
const BUSY_ATTEMPTS: u32 = 6;
const BUSY_BASE_MS: u64 = 100;
const BUSY_CAP_MS: u64 = 5_000;

/// 50 %–150 % of the nominal delay via xorshift64 — enough jitter that
/// clients refused together do not re-collide on the retry.
fn jittered(nominal_ms: u64, rng: &mut u64) -> u64 {
    *rng ^= *rng << 13;
    *rng ^= *rng >> 7;
    *rng ^= *rng << 17;
    nominal_ms / 2 + *rng % nominal_ms.max(1)
}

fn backoff_seed() -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.subsec_nanos() as u64);
    ((std::process::id() as u64) << 32 | nanos) | 1
}

/// Run `attempt` under the bounded-backoff policy: busy refusals sleep
/// (honouring the server's `RETRY-AFTER` hint when present, capped and
/// jittered) and retry up to [`BUSY_ATTEMPTS`] times; anything else is
/// returned as-is.
fn with_busy_retry<T>(mut attempt: impl FnMut() -> Result<T, SubmitError>) -> Result<T, String> {
    let mut rng = backoff_seed();
    let mut delay = BUSY_BASE_MS;
    for tries in 1..=BUSY_ATTEMPTS {
        match attempt() {
            Ok(out) => return Ok(out),
            Err(SubmitError::Fatal(msg)) => return Err(msg),
            Err(SubmitError::Busy { retry_after, msg }) => {
                if tries == BUSY_ATTEMPTS {
                    return Err(format!("{msg} (gave up after {BUSY_ATTEMPTS} attempts)"));
                }
                let nominal = retry_after.unwrap_or(delay).clamp(1, BUSY_CAP_MS);
                std::thread::sleep(Duration::from_millis(jittered(nominal, &mut rng)));
                delay = (delay * 2).min(BUSY_CAP_MS);
            }
        }
    }
    unreachable!("the final attempt either succeeds or returns its error")
}

/// Everything one wire exchange can carry; full and sharded submissions
/// read the same frames and pick what they need.
struct Response {
    cells: usize,
    table: Option<String>,
    stats: String,
    results: Vec<(usize, RunResult)>,
}

fn transact(
    addr: &str,
    request_line: &str,
    scenario: &Scenario,
    progress: &mut dyn FnMut(&str),
) -> Result<Response, SubmitError> {
    let fatal = SubmitError::Fatal;
    let (mut reader, mut stream) = connect(addr).map_err(fatal)?;
    let request = format!("{request_line}\n{scenario}{}\n", protocol::END_MARKER);
    stream
        .write_all(request.as_bytes())
        .and_then(|()| stream.flush())
        .map_err(|e| SubmitError::Fatal(format!("cannot send request: {e}")))?;

    let first = read_line(&mut reader).map_err(fatal)?;
    let cells = match first.split_once(' ') {
        Some(("OK", n)) => n
            .parse::<usize>()
            .map_err(|_| SubmitError::Fatal(format!("malformed acknowledgement: {first}")))?,
        Some(("ERR", msg)) => return Err(classify_rejection(msg)),
        _ => return Err(SubmitError::Fatal(format!("unexpected reply from server: {first}"))),
    };
    let mut response = Response { cells, table: None, stats: String::new(), results: Vec::new() };
    loop {
        let line = read_line(&mut reader).map_err(fatal)?;
        if line == protocol::DONE {
            break;
        } else if line.starts_with("CELL ") {
            progress(&line);
        } else if let Some(parsed) = protocol::parse_result(&line) {
            let (index, result) =
                parsed.map_err(|e| SubmitError::Fatal(format!("bad RESULT frame: {e}")))?;
            response.results.push((index, result));
        } else if let Some(n) = line.strip_prefix("TABLE ") {
            let nbytes: usize = n
                .parse()
                .map_err(|_| SubmitError::Fatal(format!("malformed table header: {line}")))?;
            let mut buf = vec![0u8; nbytes];
            reader
                .read_exact(&mut buf)
                .map_err(|e| SubmitError::Fatal(format!("truncated table payload: {e}")))?;
            response.table = Some(
                String::from_utf8(buf)
                    .map_err(|e| SubmitError::Fatal(format!("non-UTF-8 table: {e}")))?,
            );
        } else if line.starts_with("STATS ") {
            response.stats = line;
        } else if let Some(msg) = line.strip_prefix("ERR ") {
            return Err(SubmitError::Fatal(format!("server error: {msg}")));
        } else {
            return Err(SubmitError::Fatal(format!("unexpected line from server: {line}")));
        }
    }
    Ok(response)
}

/// Submit `scenario` to the server at `addr` and collect the response.
/// `progress` is invoked once per streamed `CELL` line, in job-index
/// order, as the server completes cells. A busy server is retried with
/// bounded, jittered exponential backoff; any other server-side `ERR`
/// (a malformed scenario above all) comes back as this function's `Err`.
pub fn submit(
    addr: &str,
    scenario: &Scenario,
    view: View,
    format: Format,
    mut progress: impl FnMut(&str),
) -> Result<RemoteOutcome, String> {
    with_busy_retry(|| {
        let response =
            transact(addr, &protocol::submit_line(view, format), scenario, &mut progress)?;
        let table = response
            .table
            .ok_or_else(|| SubmitError::Fatal("server finished without sending a table".into()))?;
        Ok(RemoteOutcome { table, stats: response.stats, cells: response.cells })
    })
}

/// Submit shard `(i, n)` of `scenario` to the server at `addr`: the
/// server simulates only the cells with `index % n == i` and replies
/// with raw `RESULT` frames instead of a rendered table. Busy servers
/// are retried exactly as in [`submit`].
pub fn submit_shard(
    addr: &str,
    scenario: &Scenario,
    shard: (u32, u32),
) -> Result<ShardOutcome, String> {
    with_busy_retry(|| {
        let mut cell_lines = Vec::new();
        let line = protocol::submit_line_sharded(View::Long, Format::Ascii, shard);
        let response = transact(addr, &line, scenario, &mut |l| cell_lines.push(l.to_string()))?;
        Ok(ShardOutcome {
            results: response.results,
            cell_lines,
            stats: response.stats,
            cells: response.cells,
        })
    })
}

/// Split `scenario` across several workers — shard `i` of `n` per
/// address — merge the returned cells by index, and render the table
/// locally: byte-identical to a single local (or single-server) run.
/// `progress` receives every shard's `CELL` lines, replayed in global
/// job-index order once all shards are in. The returned `stats` carries
/// one `addr: STATS …` line per worker.
pub fn submit_workers(
    addrs: &[String],
    scenario: &Scenario,
    view: View,
    format: Format,
    mut progress: impl FnMut(&str),
) -> Result<RemoteOutcome, String> {
    match addrs {
        [] => return Err("no worker addresses given".into()),
        [only] => return submit(only, scenario, view, format, progress),
        _ => {}
    }
    let n = addrs.len() as u32;
    let spec = scenario.to_spec();
    let expected = spec.job_count();
    let outcomes: Vec<Result<ShardOutcome, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..addrs.len())
            .map(|i| scope.spawn(move || submit_shard(&addrs[i], scenario, (i as u32, n))))
            .collect();
        handles.into_iter().map(|h| h.join().expect("shard client thread panicked")).collect()
    });
    let mut cells: Vec<Option<RunResult>> = vec![None; expected];
    let mut cell_lines = Vec::new();
    let mut stats = Vec::new();
    for (addr, outcome) in addrs.iter().zip(outcomes) {
        let shard = outcome.map_err(|e| format!("worker {addr}: {e}"))?;
        for (index, result) in shard.results {
            if index >= expected {
                return Err(format!("worker {addr} returned out-of-range cell {index}"));
            }
            cells[index] = Some(result);
        }
        cell_lines.extend(shard.cell_lines);
        if !shard.stats.is_empty() {
            stats.push(format!("{addr}: {}", shard.stats));
        }
    }
    let merged: Vec<RunResult> = cells
        .into_iter()
        .enumerate()
        .map(|(i, cell)| cell.ok_or_else(|| format!("no worker returned cell {i}")))
        .collect::<Result<_, _>>()?;
    // Replay the cell progress in global job-index order, exactly as a
    // single server would have streamed it.
    cell_lines.sort_by_key(|line| {
        line.split_whitespace().nth(1).and_then(|i| i.parse::<usize>().ok()).unwrap_or(usize::MAX)
    });
    for line in &cell_lines {
        progress(line);
    }
    let results = spec.assemble(merged, Default::default());
    Ok(RemoteOutcome {
        table: protocol::render_output(&results, view, format),
        stats: stats.join("\n"),
        cells: expected,
    })
}

/// Liveness probe: `PING` → `PONG`.
pub fn ping(addr: &str) -> Result<(), String> {
    let (mut reader, mut stream) = connect(addr)?;
    stream.write_all(b"PING\n").map_err(|e| format!("cannot send PING: {e}"))?;
    match read_line(&mut reader)?.as_str() {
        protocol::PONG => Ok(()),
        other => Err(format!("unexpected PING reply: {other}")),
    }
}

/// Ask the server at `addr` to shut down gracefully (`SHUTDOWN` → `BYE`).
pub fn shutdown(addr: &str) -> Result<(), String> {
    let (mut reader, mut stream) = connect(addr)?;
    stream.write_all(b"SHUTDOWN\n").map_err(|e| format!("cannot send SHUTDOWN: {e}"))?;
    match read_line(&mut reader)?.as_str() {
        protocol::BYE => Ok(()),
        other => Err(format!("unexpected SHUTDOWN reply: {other}")),
    }
}
