//! Deterministic parallel sweep engine.
//!
//! The paper's headline results are full grids of (workload × predictor ×
//! confidence × recovery) runs. Each grid cell is an independent
//! simulation, so the engine here expands a declarative [`SweepSpec`] into
//! index-numbered jobs, executes them on a [`std::thread::scope`] worker
//! pool fed by a bounded work queue, and merges results **by job index** —
//! the output of a parallel run is bit-identical to a serial run of the
//! same grid, regardless of worker count or scheduling.
//!
//! Three layers, lowest first:
//!
//! * [`run_indexed`] — a generic deterministic parallel map: `N` jobs in,
//!   `N` results out, in index order.
//! * [`run_grid`] — run every benchmark under every [`CoreConfig`] and
//!   fold the results into one [`SuiteResults`] per configuration. All the
//!   simulation-backed experiments in [`crate::experiments`] sit on this.
//! * [`SweepSpec`] / [`SweepResults`] — the declarative cartesian grid
//!   behind the `sweep` binary: predictors × confidence choices × recovery
//!   policies × benchmarks, with long-form and matrix table rendering.
//!
//! # Examples
//!
//! ```
//! use vpsim_bench::sweep::{SchemeChoice, SweepSpec};
//! use vpsim_bench::RunSettings;
//! use vpsim_core::PredictorKind;
//! use vpsim_uarch::RecoveryPolicy;
//! use vpsim_workloads::benchmark;
//!
//! let mut spec = SweepSpec {
//!     settings: RunSettings { warmup: 1_000, measure: 5_000, ..RunSettings::default() },
//!     predictors: vec![PredictorKind::Vtage],
//!     schemes: vec![SchemeChoice::Fpc],
//!     recoveries: vec![RecoveryPolicy::SquashAtCommit],
//!     benches: vec![benchmark("gzip").unwrap()],
//!     ..SweepSpec::default()
//! };
//! let serial = spec.run();
//! spec.settings.threads = 4;
//! let parallel = spec.run();
//! assert_eq!(serial.table().to_csv(), parallel.table().to_csv());
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::runner::{RunSettings, SuiteResults};
use crate::store::{cell_key, Stores, TraceStore};
use crate::trace_cache::{SharedTrace, TraceCache};
use vpsim_core::{ConfidenceScheme, PredictorKind};
use vpsim_isa::Trace;
use vpsim_stats::mean;
use vpsim_stats::stall::StallReport;
use vpsim_stats::table::{fmt_f, fmt_pct, Table};
use vpsim_uarch::tap::{check_conservation, StallTally};
use vpsim_uarch::{CoreConfig, RecoveryPolicy, RunResult, VpConfig};
use vpsim_workloads::Benchmark;

// ---------------------------------------------------------------------------
// Bounded work queue
// ---------------------------------------------------------------------------

/// A bounded multi-producer/multi-consumer queue of job indices.
///
/// `push` blocks while the queue is at capacity; `pop` blocks while it is
/// empty and not yet closed. Closing wakes every waiter: pending `pop`s
/// drain the remaining items and then return `None`, pending `push`es give
/// up. The items are plain indices, so the bound is not about memory —
/// it keeps dispatch FIFO and lets future callers stream jobs from a
/// producer that is itself doing work (e.g. generating grid cells on the
/// fly) without racing ahead of the workers.
struct BoundedQueue {
    cap: usize,
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
}

struct QueueState {
    items: VecDeque<usize>,
    closed: bool,
}

impl BoundedQueue {
    fn new(cap: usize) -> Self {
        BoundedQueue {
            cap: cap.max(1),
            state: Mutex::new(QueueState { items: VecDeque::new(), closed: false }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Enqueue `item`, blocking while full. Returns `false` if the queue
    /// was closed before the item could be enqueued.
    fn push(&self, item: usize) -> bool {
        let mut st = self.state.lock().unwrap();
        loop {
            if st.closed {
                return false;
            }
            if st.items.len() < self.cap {
                st.items.push_back(item);
                self.not_empty.notify_one();
                return true;
            }
            st = self.not_full.wait(st).unwrap();
        }
    }

    /// Dequeue the next item, blocking while empty. Returns `None` once
    /// the queue is closed and drained.
    fn pop(&self) -> Option<usize> {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(item) = st.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).unwrap();
        }
    }

    fn close(&self) {
        let mut st = self.state.lock().unwrap();
        st.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// Closes the queue if its thread unwinds, so the producer blocked on a
/// full queue cannot deadlock; the panic itself resurfaces when the scope
/// joins the worker.
struct CloseOnPanic<'a>(&'a BoundedQueue);

impl Drop for CloseOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.close();
        }
    }
}

// ---------------------------------------------------------------------------
// Deterministic parallel map
// ---------------------------------------------------------------------------

/// Run `jobs` independent jobs on `threads` workers and return their
/// results **in job-index order**.
///
/// `threads <= 1` runs everything serially on the calling thread; any
/// higher count spawns scoped workers fed by a bounded queue. Because each
/// result is written to its own index slot, the returned vector — and
/// therefore anything rendered from it — is identical for every thread
/// count.
///
/// # Examples
///
/// ```
/// use vpsim_bench::sweep::run_indexed;
///
/// let serial = run_indexed(10, 1, |i| i * i);
/// let parallel = run_indexed(10, 4, |i| i * i);
/// assert_eq!(serial, parallel);
/// ```
pub fn run_indexed<T, F>(jobs: usize, threads: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || jobs <= 1 {
        return (0..jobs).map(run).collect();
    }
    let workers = threads.min(jobs);
    let queue = BoundedQueue::new(2 * workers);
    let slots: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let _guard = CloseOnPanic(&queue);
                while let Some(i) = queue.pop() {
                    let result = run(i);
                    *slots[i].lock().unwrap() = Some(result);
                }
            });
        }
        for i in 0..jobs {
            if !queue.push(i) {
                break; // a worker panicked and closed the queue
            }
        }
        queue.close();
    });
    slots.into_iter().map(|slot| slot.into_inner().unwrap().expect("every job ran")).collect()
}

/// Per-job result slots for [`run_indexed_streamed`], plus the flag the
/// in-order consumer needs to bail out if a worker dies.
struct StreamState<T> {
    slots: Vec<Option<T>>,
    failed: bool,
}

/// Marks the stream failed if its worker unwinds, so the in-order
/// consumer cannot wait forever on a slot that will never fill; the panic
/// itself resurfaces when the scope joins the worker.
struct FailOnPanic<'a, T> {
    state: &'a Mutex<StreamState<T>>,
    ready: &'a Condvar,
}

impl<T> Drop for FailOnPanic<'_, T> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            if let Ok(mut st) = self.state.lock() {
                st.failed = true;
            }
            self.ready.notify_all();
        }
    }
}

/// Like [`run_indexed`], but additionally invokes `consume(i, &result)`
/// **on the calling thread, in strict job-index order**, as results
/// become available — the streaming primitive behind the job server's
/// per-cell result lines. Returns the full result vector in index order,
/// exactly as [`run_indexed`] does, so streamed and merged views can
/// never disagree.
///
/// With more than one thread, job indices are fed to the worker pool from
/// a scoped producer thread while the calling thread waits on the next
/// unconsumed slot; out-of-order completions simply park in their slots
/// until their turn.
///
/// # Examples
///
/// ```
/// use vpsim_bench::sweep::run_indexed_streamed;
///
/// let mut seen = Vec::new();
/// let results = run_indexed_streamed(10, 4, |i| i * i, |i, &r| seen.push((i, r)));
/// assert_eq!(results, (0..10).map(|i| i * i).collect::<Vec<_>>());
/// assert_eq!(seen, (0..10).map(|i| (i, i * i)).collect::<Vec<_>>());
/// ```
pub fn run_indexed_streamed<T, F, C>(jobs: usize, threads: usize, run: F, mut consume: C) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    C: FnMut(usize, &T),
{
    if threads <= 1 || jobs <= 1 {
        return (0..jobs)
            .map(|i| {
                let result = run(i);
                consume(i, &result);
                result
            })
            .collect();
    }
    let workers = threads.min(jobs);
    let queue = BoundedQueue::new(2 * workers);
    let state = Mutex::new(StreamState { slots: (0..jobs).map(|_| None).collect(), failed: false });
    let ready = Condvar::new();
    let mut out = Vec::with_capacity(jobs);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let _close = CloseOnPanic(&queue);
                let _fail = FailOnPanic { state: &state, ready: &ready };
                while let Some(i) = queue.pop() {
                    let result = run(i);
                    state.lock().unwrap().slots[i] = Some(result);
                    ready.notify_all();
                }
            });
        }
        // The producer feeds the queue from its own scoped thread so the
        // calling thread is free to consume strictly in order below.
        scope.spawn(|| {
            for i in 0..jobs {
                if !queue.push(i) {
                    return; // a worker panicked and closed the queue
                }
            }
            queue.close();
        });
        'consume: for i in 0..jobs {
            let mut st = state.lock().unwrap();
            let result = loop {
                if let Some(result) = st.slots[i].take() {
                    break result;
                }
                if st.failed {
                    break 'consume; // the panic resurfaces at scope join
                }
                st = ready.wait(st).unwrap();
            };
            drop(st);
            consume(i, &result);
            out.push(result);
        }
    });
    assert_eq!(out.len(), jobs, "every job ran");
    out
}

// ---------------------------------------------------------------------------
// Configuration grids
// ---------------------------------------------------------------------------

/// Capture (or fetch from the process-wide [`TraceCache`]) one shared
/// trace per benchmark, in parallel on `settings.threads` workers. The
/// budget covers the largest ROB in `configs`, so every grid cell replays
/// byte-identically. With a [`TraceStore`], the in-memory cache falls
/// through to disk before capturing (and persists fresh captures).
/// Returns the traces (benchmark order) and how many were captured fresh.
fn prefetch_traces(
    settings: &RunSettings,
    benches: &[Benchmark],
    configs: &[CoreConfig],
    store: Option<&TraceStore>,
) -> (Vec<Arc<SharedTrace>>, usize) {
    let budget = configs
        .iter()
        .map(|c| settings.trace_budget(c))
        .max()
        .unwrap_or_else(|| settings.trace_budget(&settings.core()));
    let captures = run_indexed(benches.len(), settings.threads, |bi| {
        // Sampled replay seeks within an owned trace, so it decodes store
        // hits up front instead of taking the mapped zero-copy path.
        if settings.sample.is_some() {
            let (trace, fresh) =
                TraceCache::global().get_with_store(settings, &benches[bi], budget, store);
            (SharedTrace::Owned(trace), fresh)
        } else {
            TraceCache::global().get_shared_with_store(settings, &benches[bi], budget, store)
        }
    });
    let fresh = captures.iter().filter(|(_, fresh)| *fresh).count();
    (captures.into_iter().map(|(trace, _)| Arc::new(trace)).collect(), fresh)
}

/// Run every benchmark under every configuration and return one
/// [`SuiteResults`] per configuration, in input order.
///
/// Jobs are laid out configuration-major (`configs[0]` over all benchmarks
/// first), executed on `settings.threads` workers, and merged by index, so
/// row order matches a serial double loop exactly. With
/// `settings.trace_cache` on, each benchmark's dynamic trace is captured
/// once and shared (`Arc<Trace>`) across every configuration and worker
/// thread; with it off, every job re-executes functionally inline. The
/// two modes produce byte-identical results.
pub fn run_grid(
    settings: &RunSettings,
    benches: &[Benchmark],
    configs: &[CoreConfig],
) -> Vec<SuiteResults> {
    if benches.is_empty() {
        return configs.iter().map(|_| SuiteResults { rows: Vec::new() }).collect();
    }
    let jobs = configs.len() * benches.len();
    let results = if settings.trace_cache {
        let (traces, _) = prefetch_traces(settings, benches, configs, None);
        run_indexed(jobs, settings.threads, |i| {
            let (ci, bi) = (i / benches.len(), i % benches.len());
            settings.run_shared(&traces[bi], configs[ci].clone())
        })
    } else {
        run_indexed(jobs, settings.threads, |i| {
            let (ci, bi) = (i / benches.len(), i % benches.len());
            settings.run(&benches[bi], configs[ci].clone())
        })
    };
    let mut out = Vec::with_capacity(configs.len());
    let mut it = results.into_iter();
    for _ in configs {
        let rows = benches.iter().map(|b| (b.name, it.next().expect("sized exactly"))).collect();
        out.push(SuiteResults { rows });
    }
    out
}

/// Confidence-estimation choice in a sweep grid, resolved against the
/// recovery policy of the same grid point (the paper pairs each recovery
/// scheme with its own FPC probability vector, §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeChoice {
    /// The paper's baseline 3-bit saturating counters.
    Baseline,
    /// Forward Probabilistic Counters, vector matched to the recovery
    /// policy (`fpc_squash` under squash-at-commit, `fpc_reissue` under
    /// selective reissue).
    Fpc,
    /// A plain full counter of the given width (the paper's "simply use
    /// wider counters" alternative).
    Full(u8),
    /// A pinned FPC probability vector (log₂ denominators), independent of
    /// the recovery policy — how scenarios express off-paper FPC ablations
    /// and cross-matched vectors (e.g. the reissue vector under
    /// squash-at-commit recovery).
    FpcVector([u8; 7]),
}

impl SchemeChoice {
    /// Resolve to a concrete [`ConfidenceScheme`] for one grid point.
    pub fn build(self, recovery: RecoveryPolicy) -> ConfidenceScheme {
        match self {
            SchemeChoice::Baseline => ConfidenceScheme::baseline(),
            SchemeChoice::Fpc => match recovery {
                RecoveryPolicy::SquashAtCommit => ConfidenceScheme::fpc_squash(),
                RecoveryPolicy::SelectiveReissue => ConfidenceScheme::fpc_reissue(),
            },
            SchemeChoice::Full(bits) => ConfidenceScheme::full(bits),
            SchemeChoice::FpcVector(v) => ConfidenceScheme::fpc(v),
        }
    }

    /// Short label used in tables and scenario files (`baseline`, `fpc`,
    /// `full6`, `fpc-squash`, `fpc:0.3.3.3.3.4.4`, …). Round-trips through
    /// [`FromStr`](std::str::FromStr).
    pub fn label(self) -> String {
        match self {
            SchemeChoice::Baseline => "baseline".into(),
            SchemeChoice::Fpc => "fpc".into(),
            SchemeChoice::Full(bits) => format!("full{bits}"),
            SchemeChoice::FpcVector(v) => ConfidenceScheme::fpc(v).to_string(),
        }
    }
}

impl std::fmt::Display for SchemeChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

impl std::str::FromStr for SchemeChoice {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        const USAGE: &str =
            "baseline | fpc | full1..full8 | fpc-squash | fpc-reissue | fpc:p0.….p6";
        let lower = s.to_ascii_lowercase();
        match lower.as_str() {
            "baseline" | "base" => return Ok(SchemeChoice::Baseline),
            "fpc" => return Ok(SchemeChoice::Fpc),
            _ => {}
        }
        // Pinned vectors reuse the ConfidenceScheme spellings
        // (`fpc-squash`, `fpc-reissue`, `fpc:p0.….p6`).
        if lower.starts_with("fpc-") || lower.starts_with("fpc:") {
            return match lower.parse::<ConfidenceScheme>() {
                Ok(ConfidenceScheme::Fpc { log2_probs }) => Ok(SchemeChoice::FpcVector(log2_probs)),
                Ok(ConfidenceScheme::Full { bits }) => Ok(SchemeChoice::Full(bits)),
                // Keep the inner detail for malformed vectors ("bad FPC
                // probability", "needs 7 entries"), but quote this axis's
                // own spelling list for unknown names — the inner list
                // omits the plain `fpc` valid here.
                Err(e) if e.starts_with("unknown confidence scheme") => {
                    Err(format!("unknown confidence scheme {s} ({USAGE})"))
                }
                Err(e) => Err(e),
            };
        }
        match lower.strip_prefix("full").and_then(|b| b.parse::<u8>().ok()) {
            Some(bits) if (1..=8).contains(&bits) => Ok(SchemeChoice::Full(bits)),
            _ => Err(format!("unknown confidence scheme {s} ({USAGE})")),
        }
    }
}

/// One cell of the configuration grid (the workload axis is separate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GridPoint {
    /// Predictor under test.
    pub kind: PredictorKind,
    /// Confidence estimation choice.
    pub scheme: SchemeChoice,
    /// Misprediction recovery policy.
    pub recovery: RecoveryPolicy,
}

impl GridPoint {
    /// `predictor/scheme/recovery` label, e.g. `VTAGE/fpc/squash`.
    pub fn label(&self) -> String {
        format!("{}/{}/{}", self.kind.label(), self.scheme.label(), self.recovery)
    }

    /// The [`VpConfig`] this point denotes.
    pub fn vp_config(&self) -> VpConfig {
        VpConfig {
            kind: self.kind,
            scheme: self.scheme.build(self.recovery),
            recovery: self.recovery,
        }
    }
}

impl std::fmt::Display for GridPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

impl std::str::FromStr for GridPoint {
    type Err = String;

    /// Parse the `predictor/scheme/recovery` form, e.g. `vtage/fpc/squash`
    /// or `lvp/fpc:0.3.3.3.3.4.4/reissue`.
    ///
    /// # Examples
    ///
    /// ```
    /// use vpsim_bench::sweep::GridPoint;
    ///
    /// let p: GridPoint = "vtage/fpc/squash".parse().unwrap();
    /// assert_eq!(p.to_string().parse::<GridPoint>().unwrap(), p);
    /// ```
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split('/').collect();
        let [kind, scheme, recovery] = parts.as_slice() else {
            return Err(format!("grid point {s} must be predictor/scheme/recovery"));
        };
        Ok(GridPoint {
            kind: kind.trim().parse()?,
            scheme: scheme.trim().parse()?,
            recovery: recovery.trim().parse()?,
        })
    }
}

/// A declarative sweep: the cartesian product of predictors × confidence
/// choices × recovery policies (or an explicit grid-point list), run over
/// a benchmark list, plus the no-VP baseline every speedup is measured
/// against.
#[derive(Debug, Clone, Default)]
pub struct SweepSpec {
    /// Simulation sizing, seed and worker-thread count.
    pub settings: RunSettings,
    /// Predictor axis.
    pub predictors: Vec<PredictorKind>,
    /// Confidence axis.
    pub schemes: Vec<SchemeChoice>,
    /// Recovery axis.
    pub recoveries: Vec<RecoveryPolicy>,
    /// Explicit grid points. `Some` overrides the three cartesian axes —
    /// how scenarios express non-rectangular grids (e.g. the §5 counter
    /// study); `Some(vec![])` runs the baseline alone.
    pub points: Option<Vec<GridPoint>>,
    /// Workload axis (paper Table 3 names and `k:*` microkernels).
    pub benches: Vec<Benchmark>,
    /// Base core configuration every grid cell starts from (structural
    /// overrides; its seed is replaced by `settings.seed` at expansion).
    pub core: CoreConfig,
    /// Optional persistent stores (on-disk trace store and per-cell
    /// result cache). `Default` is fully in-memory; see [`Stores`].
    pub stores: Stores,
}

/// One expanded job of a [`SweepSpec`]: a single (configuration,
/// benchmark) simulation.
#[derive(Debug, Clone)]
pub struct SweepJob {
    /// Stable index; results are merged in this order.
    pub index: usize,
    /// Grid point, or `None` for the no-VP baseline.
    pub point: Option<GridPoint>,
    /// Benchmark to run.
    pub bench: Benchmark,
    /// Full core configuration for the run.
    pub config: CoreConfig,
}

impl SweepSpec {
    /// The grid points: the explicit list if one was given, otherwise the
    /// cartesian axes in stable (predictor-major) expansion order.
    pub fn points(&self) -> Vec<GridPoint> {
        if let Some(points) = &self.points {
            return points.clone();
        }
        let mut out = Vec::new();
        for &kind in &self.predictors {
            for &scheme in &self.schemes {
                for &recovery in &self.recoveries {
                    out.push(GridPoint { kind, scheme, recovery });
                }
            }
        }
        out
    }

    /// The core configuration a grid cell starts from: the structural base
    /// with this sweep's seed.
    pub fn base_core(&self) -> CoreConfig {
        self.core.clone().with_seed(self.settings.seed)
    }

    /// Expand into independent jobs: the baseline over every benchmark
    /// first, then every grid point over every benchmark.
    pub fn expand(&self) -> Vec<SweepJob> {
        let mut jobs = Vec::new();
        let mut add = |point: Option<GridPoint>, bench: &Benchmark, config: CoreConfig| {
            jobs.push(SweepJob { index: jobs.len(), point, bench: *bench, config });
        };
        for b in &self.benches {
            add(None, b, self.base_core());
        }
        for point in self.points() {
            for b in &self.benches {
                add(Some(point), b, self.base_core().with_vp(point.vp_config()));
            }
        }
        jobs
    }

    /// Number of simulations the sweep will run (baseline included).
    pub fn job_count(&self) -> usize {
        self.benches.len() * (1 + self.points().len())
    }

    /// Execute the sweep on `self.settings.threads` workers (1 = serial).
    /// Output is bit-identical for every thread count, and for the trace
    /// cache on vs off ([`RunSettings::trace_cache`]): with it on, jobs
    /// are grouped by workload, each workload's trace is captured once
    /// and shared across the whole grid via `Arc<Trace>`; with it off,
    /// every job re-executes the functional trace inline.
    pub fn run(&self) -> SweepResults {
        self.run_streamed(|_, _| {})
    }

    /// Execute the sweep, invoking `on_cell(job, result)` **in job-index
    /// order** as each grid cell finishes — the engine behind the job
    /// server's per-cell result stream. The returned [`SweepResults`] is
    /// identical to [`SweepSpec::run`]'s (which is just this method with
    /// an empty callback).
    ///
    /// With a persistent result cache configured ([`SweepSpec::stores`]),
    /// every cell is first looked up by its canonical key
    /// ([`crate::store::cell_key`]); cached cells are never simulated —
    /// a fully-cached sweep runs zero simulations and reports
    /// `timing.uops == 0` — and freshly simulated cells are persisted as
    /// they complete. With a trace store configured, the in-memory trace
    /// cache falls through to disk before capturing.
    pub fn run_streamed(&self, mut on_cell: impl FnMut(&SweepJob, &RunResult)) -> SweepResults {
        let prepared = self.prepare();
        // Stream cells in strict job order: leading cached cells go out
        // immediately, the rest as soon as every earlier cell is done.
        let mut emitted = 0;
        while emitted < prepared.jobs.len() {
            match prepared.result(emitted) {
                Some(result) => {
                    on_cell(&prepared.jobs[emitted], &result);
                    emitted += 1;
                }
                None => break,
            }
        }
        if !prepared.sim.is_empty() {
            let replay_start = Instant::now();
            run_indexed_streamed(
                prepared.sim.len(),
                self.settings.threads,
                |k| prepared.run_cell(prepared.sim[k]),
                |_, _| {
                    // `run_cell` already parked the result in its slot;
                    // drain every cell that is now next in line.
                    while emitted < prepared.jobs.len() {
                        match prepared.result(emitted) {
                            Some(result) => {
                                on_cell(&prepared.jobs[emitted], &result);
                                emitted += 1;
                            }
                            None => break,
                        }
                    }
                },
            );
            prepared.note_replay(replay_start.elapsed());
        }
        prepared.finish()
    }

    /// Expand, probe the result cache and prefetch traces — everything up
    /// to (but excluding) simulation — and return the [`PreparedSweep`]
    /// whose cells can then be run in any order from any thread. This is
    /// the unit the `vpsim-serve` scheduler interleaves across jobs.
    pub fn prepare(&self) -> PreparedSweep {
        self.prepare_shard(None)
    }

    /// [`SweepSpec::prepare`] restricted to one shard: with
    /// `Some((i, n))`, only the cells whose `index % n == i` are probed,
    /// simulated and emitted, so `n` processes sharing one persistent
    /// store cover the grid disjointly. The shard results are merged back
    /// into a full table by [`SweepSpec::assemble`] on the client.
    pub fn prepare_shard(&self, shard: Option<(u32, u32)>) -> PreparedSweep {
        let start = Instant::now();
        let jobs = self.expand();
        let emit: Vec<usize> = match shard {
            Some((i, n)) => (0..jobs.len()).filter(|&x| x as u32 % n.max(1) == i).collect(),
            None => (0..jobs.len()).collect(),
        };
        // Probe the persistent result cache: cells finished by any earlier
        // run (or process) are served as-is and never simulated again.
        let cells: Vec<Mutex<Option<RunResult>>> =
            (0..jobs.len()).map(|_| Mutex::new(None)).collect();
        if let Some(cache) = &self.stores.results {
            for &i in &emit {
                *cells[i].lock().unwrap() = cache.load(&cell_key(&self.settings, &jobs[i]));
            }
        }
        let hits = emit.iter().filter(|&&i| cells[i].lock().unwrap().is_some()).count() as u64;
        let sim: Vec<usize> =
            emit.iter().copied().filter(|&i| cells[i].lock().unwrap().is_none()).collect();
        let sampled = self.settings.sample.is_some();
        let mut timing = SweepTiming {
            jobs: emit.len(),
            workloads: self.benches.len(),
            trace_cache: self.settings.trace_cache,
            threads: self.settings.threads,
            result_cache_hits: hits,
            sampled,
            ..SweepTiming::default()
        };
        if !sampled {
            timing.uops = sim.len() as u64 * (self.settings.warmup + self.settings.measure);
        }
        let store = self.stores.traces.as_deref();
        let store_base = store.map_or((0, 0), |s| (s.hits(), s.misses()));
        let mut traces = Vec::new();
        if self.settings.trace_cache && !sim.is_empty() {
            let configs: Vec<CoreConfig> = sim.iter().map(|&i| jobs[i].config.clone()).collect();
            let capture_start = Instant::now();
            let (prefetched, fresh) =
                prefetch_traces(&self.settings, &self.benches, &configs, store);
            timing.capture = capture_start.elapsed();
            timing.captures = fresh;
            traces = prefetched;
        }
        PreparedSweep {
            spec: self.clone(),
            jobs,
            traces,
            cells,
            emit,
            sim,
            sampled,
            detailed_uops: AtomicU64::new(0),
            intervals_replayed: AtomicU64::new(0),
            ff_uops: AtomicU64::new(0),
            store_base,
            replay: Mutex::new(Duration::ZERO),
            timing: Mutex::new(timing),
            start,
        }
    }

    /// Fold index-ordered per-cell results and a timing record into
    /// [`SweepResults`] — the merge half of a sharded run: each worker
    /// returns its cells, the client interleaves them by index and calls
    /// this to rebuild the exact table a local run would print.
    pub fn assemble(&self, cells: Vec<RunResult>, timing: SweepTiming) -> SweepResults {
        assert_eq!(cells.len(), self.job_count(), "one result per expanded cell");
        let mut it = cells.into_iter();
        let mut take_suite = || SuiteResults {
            rows: self
                .benches
                .iter()
                .map(|b| (b.name, it.next().expect("sized exactly")))
                .collect(),
        };
        let baseline = take_suite();
        let points = self.points().into_iter().map(|p| (p, take_suite())).collect();
        SweepResults { baseline, points, timing }
    }

    /// Execute the sweep with a [`StallTally`] attached to every job and
    /// return per-cell stall attribution alongside the run results.
    ///
    /// Each cell's `RunResult` is byte-identical to the corresponding cell
    /// of [`SweepSpec::run`] (the tap observes, it does not perturb), and
    /// each cell's report is checked against its result with
    /// [`check_conservation`] before this returns — a failed law is a bug
    /// in the simulator's accounting and panics with the cell label.
    ///
    /// Stall attribution always replays the full windows;
    /// [`RunSettings::sample`] is ignored on this path (per-cycle
    /// attribution of a sampled estimate would attribute cycles that were
    /// never simulated).
    pub fn run_stall_report(&self) -> StallResults {
        let jobs = self.expand();
        let results: Vec<(RunResult, StallReport)> = if self.settings.trace_cache {
            let configs: Vec<CoreConfig> = jobs.iter().map(|j| j.config.clone()).collect();
            let (traces, _) = prefetch_traces(
                &self.settings,
                &self.benches,
                &configs,
                self.stores.traces.as_deref(),
            );
            run_indexed(jobs.len(), self.settings.threads, |i| {
                let mut tally = StallTally::default();
                let result = self.settings.run_shared_with_sink(
                    &traces[i % self.benches.len()],
                    jobs[i].config.clone(),
                    &mut tally,
                );
                (result, tally.measured())
            })
        } else {
            run_indexed(jobs.len(), self.settings.threads, |i| {
                let mut tally = StallTally::default();
                let result =
                    self.settings.run_with_sink(&jobs[i].bench, jobs[i].config.clone(), &mut tally);
                (result, tally.measured())
            })
        };
        let cells: Vec<StallCell> = jobs
            .iter()
            .zip(results)
            .map(|(job, (result, stalls))| {
                let cell = StallCell { bench: job.bench.name, point: job.point, result, stalls };
                if let Err(violation) = check_conservation(&cell.result, &cell.stalls) {
                    panic!("stall conservation broken at {}: {violation}", cell.label());
                }
                cell
            })
            .collect();
        StallResults { cells }
    }
}

/// A sweep expanded, cache-probed and trace-prefetched, but not yet
/// simulated: the schedulable unit behind both the local engine and the
/// `vpsim-serve` job server. Workers call [`PreparedSweep::run_cell`] for
/// each index in [`PreparedSweep::sim_indices`] — in any order, from any
/// thread — and results land in index-addressed slots that
/// [`PreparedSweep::result`] reads and [`PreparedSweep::finish`] merges.
///
/// A *sharded* preparation ([`SweepSpec::prepare_shard`]) restricts the
/// probe/simulate/emit set to the cells whose `index % n == i`; the full
/// grid is reassembled on the client via [`SweepSpec::assemble`].
pub struct PreparedSweep {
    spec: SweepSpec,
    jobs: Vec<SweepJob>,
    /// One shared trace per benchmark (empty with the trace cache off, or
    /// when every cell came from the result cache).
    traces: Vec<Arc<SharedTrace>>,
    cells: Vec<Mutex<Option<RunResult>>>,
    emit: Vec<usize>,
    sim: Vec<usize>,
    sampled: bool,
    // Sampled cells report their actual detailed/fast-forward volume,
    // accumulated from the workers as cells finish (the per-cell split
    // depends on how many intervals fit each trace).
    detailed_uops: AtomicU64,
    intervals_replayed: AtomicU64,
    ff_uops: AtomicU64,
    /// Trace-store (hits, misses) at preparation time; [`Self::timing`]
    /// reports the delta. Concurrent jobs sharing one store make the
    /// delta approximate — the counters are store-global — which is
    /// acceptable for a diagnostics line.
    store_base: (u64, u64),
    replay: Mutex<Duration>,
    timing: Mutex<SweepTiming>,
    start: Instant,
}

impl PreparedSweep {
    /// Every expanded job, in index order (the full grid, even sharded —
    /// sharding narrows what runs, not what the grid is).
    pub fn jobs(&self) -> &[SweepJob] {
        &self.jobs
    }

    /// Cell indices this preparation emits (the full grid, or this
    /// shard's subset), ascending.
    pub fn emit_indices(&self) -> &[usize] {
        &self.emit
    }

    /// Cell indices that still need simulating (the emit set minus
    /// result-cache hits), ascending.
    pub fn sim_indices(&self) -> &[usize] {
        &self.sim
    }

    /// The finished result of cell `index`: present for result-cache hits
    /// from the start, and for simulated cells once [`Self::run_cell`]
    /// completes them.
    pub fn result(&self, index: usize) -> Option<RunResult> {
        *self.cells[index].lock().unwrap()
    }

    fn run_sampled_cell(&self, trace: &Trace, config: CoreConfig) -> RunResult {
        let sampled = self.spec.settings.run_trace_sampled(trace, config);
        self.detailed_uops.fetch_add(sampled.detailed_uops, Ordering::Relaxed);
        self.intervals_replayed.fetch_add(sampled.intervals_replayed(), Ordering::Relaxed);
        self.ff_uops.fetch_add(sampled.ff_uops, Ordering::Relaxed);
        sampled.combined()
    }

    /// Simulate cell `index` (callable from any thread, each index at
    /// most once), persist it to the result cache, and park it in its
    /// slot for [`Self::result`] readers.
    pub fn run_cell(&self, index: usize) -> RunResult {
        let job = &self.jobs[index];
        let settings = &self.spec.settings;
        let result = if settings.trace_cache {
            // Jobs are expanded benchmark-major within each grid point,
            // so a job's workload — and its shared trace — is its index
            // modulo the benchmark count.
            let trace = &self.traces[index % self.spec.benches.len()];
            if self.sampled {
                self.run_sampled_cell(&trace.to_owned_trace(), job.config.clone())
            } else {
                settings.run_shared(trace, job.config.clone())
            }
        } else if self.sampled {
            // Sampling needs a captured stream to seek in, so each job
            // captures its trace privately (mirrors
            // [`RunSettings::run_job`]).
            let budget = settings.trace_budget(&job.config);
            let trace = settings.capture(&job.bench, budget);
            self.run_sampled_cell(&trace, job.config.clone())
        } else {
            settings.run(&job.bench, job.config.clone())
        };
        if let Some(cache) = &self.spec.stores.results {
            cache.save(&cell_key(settings, job), &result);
        }
        *self.cells[index].lock().unwrap() = Some(result);
        result
    }

    /// Add simulation wall-clock to the timing record (the local engine
    /// times its streamed phase; the job server sums per-job execution).
    pub fn note_replay(&self, elapsed: Duration) {
        *self.replay.lock().unwrap() += elapsed;
    }

    /// The finalized timing record: capture/replay wall-clock, sampled
    /// volumes, and store counter deltas since preparation.
    pub fn timing(&self) -> SweepTiming {
        let mut timing = *self.timing.lock().unwrap();
        timing.replay = *self.replay.lock().unwrap();
        if self.sampled {
            timing.uops = self.detailed_uops.load(Ordering::Relaxed);
            timing.intervals_replayed = self.intervals_replayed.load(Ordering::Relaxed);
            timing.ff_uops = self.ff_uops.load(Ordering::Relaxed);
        }
        if let Some(s) = self.spec.stores.traces.as_deref() {
            timing.trace_store_hits = s.hits().saturating_sub(self.store_base.0);
            timing.trace_store_misses = s.misses().saturating_sub(self.store_base.1);
        }
        timing.total = self.start.elapsed();
        timing
    }

    /// Merge every finished cell into [`SweepResults`]. Panics if a cell
    /// is missing — only an unsharded preparation whose whole grid has
    /// run (or came from the cache) can finish; sharded cells travel back
    /// to the client as `RESULT` frames instead and are merged by
    /// [`SweepSpec::assemble`].
    pub fn finish(&self) -> SweepResults {
        let cells: Vec<RunResult> = self
            .cells
            .iter()
            .map(|cell| cell.lock().unwrap().expect("every cell cached or simulated"))
            .collect();
        self.spec.assemble(cells, self.timing())
    }
}

/// One cell of a [`SweepSpec::run_stall_report`] grid: the configuration
/// point (or the no-VP baseline), its run result, and the measured-region
/// stall attribution.
#[derive(Debug, Clone)]
pub struct StallCell {
    /// Workload name.
    pub bench: &'static str,
    /// Grid point, or `None` for the no-VP baseline.
    pub point: Option<GridPoint>,
    /// The simulation result (byte-identical to the untapped run).
    pub result: RunResult,
    /// Per-cause cycle attribution over the measured region.
    pub stalls: StallReport,
}

impl StallCell {
    /// `benchmark @ predictor/scheme/recovery` label for diagnostics.
    pub fn label(&self) -> String {
        match self.point {
            Some(p) => format!("{} @ {}", self.bench, p.label()),
            None => format!("{} @ baseline", self.bench),
        }
    }
}

/// Results of [`SweepSpec::run_stall_report`], in expansion order
/// (baseline cells first, then each grid point over the benchmark list).
#[derive(Debug, Clone)]
pub struct StallResults {
    /// Per-cell results with stall attribution, conservation-checked.
    pub cells: Vec<StallCell>,
}

impl StallResults {
    /// Long-form table: one row per cell with the configuration columns
    /// followed by [`StallReport::headers`] (total cycles, per-cause
    /// percentages and mean queue occupancies).
    pub fn table(&self) -> Table {
        let mut headers =
            vec!["Benchmark".into(), "Predictor".into(), "Confidence".into(), "Recovery".into()];
        headers.extend(StallReport::headers());
        let mut t = Table::new(headers);
        for cell in &self.cells {
            let mut row = match cell.point {
                Some(p) => {
                    vec![
                        cell.bench.into(),
                        p.kind.label().into(),
                        p.scheme.label(),
                        p.recovery.to_string(),
                    ]
                }
                None => vec![cell.bench.into(), "none".into(), "-".into(), "-".into()],
            };
            row.extend(cell.stalls.cells());
            t.row(row);
        }
        t
    }
}

/// Wall-clock breakdown of one [`SweepSpec::run`]: how long the capture
/// and replay phases took, and how much work they covered. The `sweep`
/// binary serializes this as JSON via `--timing-json` for performance
/// trajectory tracking (`BENCH_sweep.json` at the repository root).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SweepTiming {
    /// Wall-clock of the trace capture/prefetch phase (zero with the
    /// trace cache off).
    pub capture: Duration,
    /// Wall-clock of the simulation phase (replay, or inline execution
    /// with the cache off).
    pub replay: Duration,
    /// Wall-clock of the whole sweep, expansion and merging included.
    pub total: Duration,
    /// Grid cells in the sweep (baseline rows included), whether
    /// simulated or served from the result cache.
    pub jobs: usize,
    /// Committed µops actually simulated (nominal: each simulated cell
    /// runs its warm-up plus measurement window; endless workloads always
    /// commit the full budget). Cells served from the persistent result
    /// cache contribute nothing — a fully-cached sweep reports zero.
    pub uops: u64,
    /// Distinct workloads in the grid.
    pub workloads: usize,
    /// Traces captured fresh this run (cache misses; hits cost nothing).
    pub captures: usize,
    /// Grid cells served from the persistent result cache (zero without
    /// a configured store).
    pub result_cache_hits: u64,
    /// Workload traces served from the on-disk trace store (zero without
    /// a configured store).
    pub trace_store_hits: u64,
    /// Trace-store lookups that missed (entry absent, corrupt, or too
    /// short for the requested budget).
    pub trace_store_misses: u64,
    /// Whether the capture-once/replay-many path was used.
    pub trace_cache: bool,
    /// Worker threads.
    pub threads: usize,
    /// Whether interval sampling ([`RunSettings::sample`]) was on. When
    /// set, `uops` counts the *detailed* µops actually replayed (interval
    /// warm-ups plus measurement windows), not the nominal full windows.
    pub sampled: bool,
    /// Detailed intervals replayed across every sampled cell (zero when
    /// sampling is off).
    pub intervals_replayed: u64,
    /// µops streamed through the functional fast-forward warmer across
    /// every sampled cell (zero when sampling is off).
    pub ff_uops: u64,
}

impl SweepTiming {
    /// Nanoseconds of simulation (replay/inline) wall-clock per committed
    /// µop — the timing model's throughput figure, tracked across PRs in
    /// `BENCH_sweep.json` and reported by the `pipeline_cycle` criterion
    /// bench. Zero when no µops were simulated.
    ///
    /// # Examples
    ///
    /// ```
    /// use std::time::Duration;
    /// use vpsim_bench::sweep::SweepTiming;
    ///
    /// let t = SweepTiming { replay: Duration::from_secs(1), uops: 10_000_000, ..SweepTiming::default() };
    /// assert_eq!(t.ns_per_uop(), 100.0);
    /// ```
    pub fn ns_per_uop(&self) -> f64 {
        if self.uops == 0 {
            return 0.0;
        }
        self.replay.as_secs_f64() * 1e9 / self.uops as f64
    }

    /// Serialize as a small JSON object (no external dependencies; every
    /// field is a number or boolean, so escaping is a non-issue).
    ///
    /// # Examples
    ///
    /// ```
    /// use vpsim_bench::sweep::SweepTiming;
    ///
    /// let json = SweepTiming::default().to_json();
    /// assert!(json.starts_with("{\n"));
    /// assert!(json.contains("\"jobs\": 0"));
    /// assert!(json.contains("\"ns_per_uop\": 0.0"));
    /// ```
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"trace_cache\": {},\n  \"threads\": {},\n  \"jobs\": {},\n  \
             \"uops\": {},\n  \"workloads\": {},\n  \"captures\": {},\n  \
             \"trace_store_hits\": {},\n  \"trace_store_misses\": {},\n  \
             \"result_cache_hits\": {},\n  \
             \"sampled\": {},\n  \"intervals_replayed\": {},\n  \"ff_uops\": {},\n  \
             \"capture_seconds\": {:.6},\n  \"replay_seconds\": {:.6},\n  \
             \"total_seconds\": {:.6},\n  \"ns_per_uop\": {:.1}\n}}\n",
            self.trace_cache,
            self.threads,
            self.jobs,
            self.uops,
            self.workloads,
            self.captures,
            self.trace_store_hits,
            self.trace_store_misses,
            self.result_cache_hits,
            self.sampled,
            self.intervals_replayed,
            self.ff_uops,
            self.capture.as_secs_f64(),
            self.replay.as_secs_f64(),
            self.total.as_secs_f64(),
            self.ns_per_uop(),
        )
    }
}

/// Results of a [`SweepSpec`] run, in expansion order.
#[derive(Debug, Clone)]
pub struct SweepResults {
    /// No-VP baseline results over the benchmark list.
    pub baseline: SuiteResults,
    /// Per-grid-point results, in [`SweepSpec::points`] order.
    pub points: Vec<(GridPoint, SuiteResults)>,
    /// Wall-clock breakdown of the run (capture vs replay phases).
    pub timing: SweepTiming,
}

impl SweepResults {
    /// Long-form table: one row per (grid point, benchmark) with IPC,
    /// speedup over the no-VP baseline, coverage and accuracy, plus a
    /// `g-mean` summary row per point. Baseline rows come first.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "Benchmark".into(),
            "Predictor".into(),
            "Confidence".into(),
            "Recovery".into(),
            "IPC".into(),
            "Speedup".into(),
            "Coverage".into(),
            "Accuracy".into(),
        ]);
        for (name, r) in &self.baseline.rows {
            t.row(vec![
                (*name).into(),
                "none".into(),
                "-".into(),
                "-".into(),
                fmt_f(r.metrics.ipc(), 3),
                fmt_f(1.0, 3),
                "-".into(),
                "-".into(),
            ]);
        }
        for (point, suite) in &self.points {
            let speedups = suite.speedups(&self.baseline);
            for (i, (name, r)) in suite.rows.iter().enumerate() {
                t.row(vec![
                    (*name).into(),
                    point.kind.label().into(),
                    point.scheme.label(),
                    point.recovery.to_string(),
                    fmt_f(r.metrics.ipc(), 3),
                    fmt_f(speedups[i], 3),
                    fmt_pct(r.vp.coverage(), 1),
                    fmt_pct(r.vp.accuracy(), 2),
                ]);
            }
            t.row(vec![
                "g-mean".into(),
                point.kind.label().into(),
                point.scheme.label(),
                point.recovery.to_string(),
                String::new(),
                fmt_f(mean::geometric(&speedups).unwrap_or(1.0), 3),
                String::new(),
                String::new(),
            ]);
        }
        t
    }

    /// Matrix view: benchmarks as rows, one speedup column per grid
    /// point, with a final `g-mean` row.
    pub fn matrix(&self) -> Table {
        let mut headers = vec!["Benchmark".into()];
        headers.extend(self.points.iter().map(|(p, _)| p.label()));
        let mut t = Table::new(headers);
        let speedups: Vec<Vec<f64>> =
            self.points.iter().map(|(_, suite)| suite.speedups(&self.baseline)).collect();
        for (i, (name, _)) in self.baseline.rows.iter().enumerate() {
            let mut row = vec![(*name).to_string()];
            row.extend(speedups.iter().map(|col| fmt_f(col[i], 3)));
            t.row(row);
        }
        let mut grow = vec!["g-mean".to_string()];
        grow.extend(speedups.iter().map(|col| fmt_f(mean::geometric(col).unwrap_or(1.0), 3)));
        t.row(grow);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpsim_workloads::benchmark;

    fn tiny() -> RunSettings {
        RunSettings { warmup: 1_000, measure: 5_000, seed: 7, ..RunSettings::default() }
    }

    #[test]
    fn run_indexed_is_order_deterministic() {
        let serial = run_indexed(23, 1, |i| i * 3 + 1);
        for threads in [2, 4, 8] {
            assert_eq!(run_indexed(23, threads, |i| i * 3 + 1), serial);
        }
    }

    #[test]
    fn run_indexed_handles_edge_counts() {
        assert!(run_indexed(0, 4, |i| i).is_empty());
        assert_eq!(run_indexed(1, 4, |i| i + 10), vec![10]);
        // More workers than jobs.
        assert_eq!(run_indexed(2, 16, |i| i), vec![0, 1]);
    }

    #[test]
    fn queue_drains_after_close() {
        let q = BoundedQueue::new(4);
        assert!(q.push(1));
        assert!(q.push(2));
        q.close();
        assert!(!q.push(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn scheme_choice_parses_and_labels() {
        assert_eq!("baseline".parse::<SchemeChoice>().unwrap(), SchemeChoice::Baseline);
        assert_eq!("fpc".parse::<SchemeChoice>().unwrap(), SchemeChoice::Fpc);
        assert_eq!("full6".parse::<SchemeChoice>().unwrap(), SchemeChoice::Full(6));
        assert!("full0".parse::<SchemeChoice>().is_err());
        assert!("full9".parse::<SchemeChoice>().is_err());
        assert!("nonsense".parse::<SchemeChoice>().is_err());
        assert_eq!(SchemeChoice::Full(6).label(), "full6");
    }

    #[test]
    fn malformed_fpc_spellings_quote_this_axis_spelling_list() {
        let err = "fpc-bogus".parse::<SchemeChoice>().unwrap_err();
        assert!(err.contains("| fpc |"), "{err}");
        // Vector-shape errors keep the more specific inner message.
        let err = "fpc:1.2.3".parse::<SchemeChoice>().unwrap_err();
        assert!(err.contains("7 entries"), "{err}");
    }

    #[test]
    fn pinned_fpc_vectors_parse_and_round_trip() {
        let squash = "fpc-squash".parse::<SchemeChoice>().unwrap();
        assert_eq!(squash, SchemeChoice::FpcVector([0, 4, 4, 4, 4, 5, 5]));
        // A pinned vector ignores the recovery policy — unlike `fpc`.
        assert_eq!(squash.build(RecoveryPolicy::SelectiveReissue), ConfidenceScheme::fpc_squash());
        for text in ["fpc-squash", "fpc-reissue", "fpc:0.2.2.2.2.3.3"] {
            let choice = text.parse::<SchemeChoice>().unwrap();
            assert_eq!(choice.label(), text);
            assert_eq!(choice.label().parse::<SchemeChoice>().unwrap(), choice);
        }
    }

    #[test]
    fn grid_point_round_trips() {
        for text in ["vtage/fpc/squash", "LVP/full6/reissue", "o4-FCM/fpc:0.3.3.3.3.4.4/squash"] {
            let p: GridPoint = text.parse().unwrap();
            assert_eq!(p.to_string().parse::<GridPoint>().unwrap(), p, "{text}");
        }
        assert!("vtage/fpc".parse::<GridPoint>().is_err());
        assert!("vtage/fpc/squash/extra".parse::<GridPoint>().is_err());
    }

    #[test]
    fn explicit_points_override_cartesian_axes() {
        let explicit = vec![
            GridPoint {
                kind: PredictorKind::Oracle,
                scheme: SchemeChoice::Fpc,
                recovery: RecoveryPolicy::SquashAtCommit,
            },
            GridPoint {
                kind: PredictorKind::Lvp,
                scheme: SchemeChoice::Full(6),
                recovery: RecoveryPolicy::SelectiveReissue,
            },
        ];
        let spec = SweepSpec {
            settings: tiny(),
            predictors: vec![PredictorKind::Vtage],
            schemes: vec![SchemeChoice::Fpc],
            recoveries: vec![RecoveryPolicy::SquashAtCommit],
            points: Some(explicit.clone()),
            benches: vec![benchmark("gzip").unwrap()],
            ..SweepSpec::default()
        };
        assert_eq!(spec.points(), explicit);
        assert_eq!(spec.job_count(), 3);
        // An empty explicit grid runs the baseline alone.
        let baseline_only = SweepSpec { points: Some(Vec::new()), ..spec };
        assert_eq!(baseline_only.job_count(), 1);
    }

    #[test]
    fn base_core_carries_overrides_and_sweep_seed() {
        let spec = SweepSpec {
            settings: tiny(),
            core: CoreConfig { fetch_width: 4, ..CoreConfig::default() },
            benches: vec![benchmark("gzip").unwrap()],
            ..SweepSpec::default()
        };
        let core = spec.base_core();
        assert_eq!(core.fetch_width, 4);
        assert_eq!(core.seed, spec.settings.seed);
        assert_eq!(spec.expand()[0].config, core);
    }

    #[test]
    fn fpc_choice_matches_recovery_vector() {
        assert_eq!(
            SchemeChoice::Fpc.build(RecoveryPolicy::SquashAtCommit),
            ConfidenceScheme::fpc_squash()
        );
        assert_eq!(
            SchemeChoice::Fpc.build(RecoveryPolicy::SelectiveReissue),
            ConfidenceScheme::fpc_reissue()
        );
        assert_eq!(
            SchemeChoice::Baseline.build(RecoveryPolicy::SquashAtCommit),
            ConfidenceScheme::baseline()
        );
    }

    #[test]
    fn spec_expands_baseline_first_in_stable_order() {
        let spec = SweepSpec {
            settings: tiny(),
            predictors: vec![PredictorKind::Lvp, PredictorKind::Vtage],
            schemes: vec![SchemeChoice::Fpc],
            recoveries: vec![RecoveryPolicy::SquashAtCommit, RecoveryPolicy::SelectiveReissue],
            benches: vec![benchmark("gzip").unwrap(), benchmark("mcf").unwrap()],
            ..SweepSpec::default()
        };
        let jobs = spec.expand();
        assert_eq!(jobs.len(), spec.job_count());
        assert_eq!(jobs.len(), 2 * (1 + 4));
        assert!(jobs[0].point.is_none() && jobs[1].point.is_none());
        assert_eq!(jobs[0].bench.name, "gzip");
        assert_eq!(jobs[1].bench.name, "mcf");
        let p = jobs[2].point.unwrap();
        assert_eq!(p.kind, PredictorKind::Lvp);
        assert_eq!(p.recovery, RecoveryPolicy::SquashAtCommit);
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.index, i);
        }
    }

    #[test]
    fn grid_matches_individual_runs() {
        let s = tiny();
        let benches = [benchmark("gzip").unwrap(), benchmark("h264ref").unwrap()];
        let vp = s
            .core()
            .with_vp(VpConfig::enabled(PredictorKind::Vtage, RecoveryPolicy::SquashAtCommit));
        let grids = run_grid(&s, &benches, &[s.core(), vp.clone()]);
        assert_eq!(grids.len(), 2);
        assert_eq!(grids[0].rows[0].1, s.run(&benches[0], s.core()));
        assert_eq!(grids[1].rows[1].1, s.run(&benches[1], vp));
    }

    #[test]
    fn trace_cache_off_is_byte_identical_to_on() {
        let spec = SweepSpec {
            settings: tiny(),
            predictors: vec![PredictorKind::Lvp, PredictorKind::Vtage],
            schemes: vec![SchemeChoice::Fpc],
            recoveries: vec![RecoveryPolicy::SquashAtCommit],
            benches: vec![benchmark("gzip").unwrap(), benchmark("mcf").unwrap()],
            ..SweepSpec::default()
        };
        let cached = spec.run();
        let inline = SweepSpec {
            settings: RunSettings { trace_cache: false, ..spec.settings },
            ..spec.clone()
        }
        .run();
        assert_eq!(cached.table().to_csv(), inline.table().to_csv());
        assert_eq!(cached.baseline.rows, inline.baseline.rows);
        for ((pa, sa), (pb, sb)) in cached.points.iter().zip(&inline.points) {
            assert_eq!(pa, pb);
            assert_eq!(sa.rows, sb.rows);
        }
        // The timing record reflects the mode.
        assert!(cached.timing.trace_cache && !inline.timing.trace_cache);
        assert_eq!(inline.timing.captures, 0);
        assert_eq!(cached.timing.jobs, spec.job_count());
    }

    #[test]
    fn timing_json_carries_the_phase_breakdown() {
        let spec = SweepSpec {
            settings: tiny(),
            predictors: vec![PredictorKind::Lvp],
            schemes: vec![SchemeChoice::Fpc],
            recoveries: vec![RecoveryPolicy::SquashAtCommit],
            benches: vec![benchmark("gzip").unwrap()],
            ..SweepSpec::default()
        };
        let results = spec.run();
        let t = results.timing;
        assert_eq!(t.jobs, 2);
        assert_eq!(t.workloads, 1);
        assert!(t.total >= t.replay);
        // 2 jobs × (1 000 warm-up + 5 000 measured) committed µops.
        assert_eq!(t.uops, 12_000);
        assert!(t.ns_per_uop() > 0.0, "simulation took time: {:?}", t.replay);
        let json = t.to_json();
        for needle in [
            "\"trace_cache\": true",
            "\"jobs\": 2",
            "\"uops\": 12000",
            "\"trace_store_hits\": 0",
            "\"trace_store_misses\": 0",
            "\"result_cache_hits\": 0",
            "\"capture_seconds\":",
            "\"total_seconds\":",
            "\"ns_per_uop\":",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn sampled_sweeps_estimate_ipc_with_less_detailed_work() {
        let settings = RunSettings {
            warmup: 2_000,
            measure: 40_000,
            seed: 11,
            sample: Some(vpsim_uarch::SampleConfig { intervals: 8, period: 2_000, warmup: 500 }),
            ..RunSettings::default()
        };
        let spec = SweepSpec {
            settings,
            predictors: vec![PredictorKind::Lvp],
            schemes: vec![SchemeChoice::Fpc],
            recoveries: vec![RecoveryPolicy::SquashAtCommit],
            benches: vec![benchmark("gzip").unwrap()],
            ..SweepSpec::default()
        };
        let results = spec.run();
        let t = results.timing;
        assert!(t.sampled);
        assert!(t.intervals_replayed > 0);
        assert!(t.ff_uops > 0, "fast-forward must cover the unsampled gaps");
        assert!(t.uops > 0);
        // Sampling replays a fraction of the full detailed volume.
        assert!(
            t.uops < t.jobs as u64 * (settings.warmup + settings.measure),
            "sampled detailed volume {} must undercut the full windows",
            t.uops
        );
        let json = t.to_json();
        for needle in ["\"sampled\": true", "\"intervals_replayed\": ", "\"ff_uops\": "] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        // The estimate lands near the full replay, for baseline and VP cells.
        let full =
            SweepSpec { settings: RunSettings { sample: None, ..settings }, ..spec.clone() }.run();
        assert!(!full.timing.sampled);
        let pairs = results
            .baseline
            .rows
            .iter()
            .zip(&full.baseline.rows)
            .chain(results.points[0].1.rows.iter().zip(&full.points[0].1.rows));
        for ((name, est), (_, exact)) in pairs {
            let err = (est.metrics.ipc() - exact.metrics.ipc()).abs() / exact.metrics.ipc();
            assert!(err < 0.15, "{name}: sampled IPC off by {:.1}%", err * 100.0);
        }
        // Sampled sweeps stay thread-count deterministic.
        let parallel =
            SweepSpec { settings: RunSettings { threads: 4, ..settings }, ..spec.clone() }.run();
        assert_eq!(parallel.table().to_csv(), results.table().to_csv());
        // And trace-cache off changes cost, not results.
        let inline =
            SweepSpec { settings: RunSettings { trace_cache: false, ..settings }, ..spec }.run();
        assert_eq!(inline.table().to_csv(), results.table().to_csv());
        assert!(inline.timing.sampled && inline.timing.intervals_replayed > 0);
    }

    #[test]
    fn run_indexed_streamed_consumes_in_order_and_matches_run_indexed() {
        for threads in [1, 2, 4, 8] {
            let mut seen = Vec::new();
            let results = run_indexed_streamed(
                23,
                threads,
                |i| i * 3 + 1,
                |i, &r| {
                    seen.push((i, r));
                },
            );
            assert_eq!(results, run_indexed(23, 1, |i| i * 3 + 1), "threads={threads}");
            assert_eq!(seen, (0..23).map(|i| (i, i * 3 + 1)).collect::<Vec<_>>());
        }
        assert!(run_indexed_streamed(0, 4, |i| i, |_, _| {}).is_empty());
    }

    #[test]
    fn streamed_cells_match_the_merged_results() {
        let spec = SweepSpec {
            settings: tiny(),
            predictors: vec![PredictorKind::Lvp],
            schemes: vec![SchemeChoice::Fpc],
            recoveries: vec![RecoveryPolicy::SquashAtCommit],
            benches: vec![benchmark("gzip").unwrap(), benchmark("mcf").unwrap()],
            ..SweepSpec::default()
        };
        let mut streamed = Vec::new();
        let results = spec.run_streamed(|job, r| streamed.push((job.index, job.bench.name, *r)));
        assert_eq!(streamed.len(), spec.job_count());
        for (k, (index, _, _)) in streamed.iter().enumerate() {
            assert_eq!(*index, k, "cells must stream in job-index order");
        }
        // Baseline cells first (benchmark-major), then the grid point.
        assert_eq!(streamed[0].1, "gzip");
        assert_eq!(streamed[1].1, "mcf");
        assert_eq!(streamed[0].2, results.baseline.rows[0].1);
        assert_eq!(streamed[1].2, results.baseline.rows[1].1);
        assert_eq!(streamed[2].2, results.points[0].1.rows[0].1);
        assert_eq!(streamed[3].2, results.points[0].1.rows[1].1);
    }

    #[test]
    fn result_cache_serves_a_repeat_sweep_without_simulating() {
        let dir = crate::store::scratch_dir("sweep-result-cache");
        let spec = SweepSpec {
            settings: tiny(),
            predictors: vec![PredictorKind::Lvp],
            schemes: vec![SchemeChoice::Fpc],
            recoveries: vec![RecoveryPolicy::SquashAtCommit],
            benches: vec![benchmark("gzip").unwrap(), benchmark("mcf").unwrap()],
            stores: Stores::open(&dir).unwrap(),
            ..SweepSpec::default()
        };
        let first = spec.run();
        assert_eq!(first.timing.result_cache_hits, 0);
        assert_eq!(first.timing.uops, 4 * 6_000);
        // A second run (fresh Stores handle — think: a new process) is
        // served entirely from the result cache: zero cells simulated,
        // byte-identical output.
        let second = SweepSpec { stores: Stores::open(&dir).unwrap(), ..spec.clone() }.run();
        assert_eq!(second.timing.result_cache_hits, spec.job_count() as u64);
        assert_eq!(second.timing.uops, 0, "no cell may be simulated on a cached sweep");
        assert_eq!(second.timing.captures, 0);
        assert_eq!(second.table().to_csv(), first.table().to_csv());
        assert_eq!(second.matrix().to_csv(), first.matrix().to_csv());
        // Uncached output is identical too: the cache changes cost, never
        // results.
        let uncached = SweepSpec { stores: Stores::default(), ..spec.clone() }.run();
        assert_eq!(uncached.table().to_csv(), first.table().to_csv());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_store_counters_surface_in_timing() {
        let dir = crate::store::scratch_dir("sweep-trace-store");
        // Use a distinct seed so the process-wide in-memory TraceCache
        // cannot already hold these captures (other tests share it).
        let settings =
            RunSettings { warmup: 500, measure: 2_000, seed: 771_177, ..RunSettings::default() };
        let spec = SweepSpec {
            settings,
            predictors: vec![PredictorKind::Lvp],
            schemes: vec![SchemeChoice::Fpc],
            recoveries: vec![RecoveryPolicy::SquashAtCommit],
            benches: vec![benchmark("h264ref").unwrap()],
            stores: Stores {
                traces: Some(Arc::new(TraceStore::open(&dir).unwrap())),
                results: None,
            },
            ..SweepSpec::default()
        };
        let first = spec.run();
        assert_eq!(first.timing.trace_store_hits, 0);
        assert_eq!(first.timing.trace_store_misses, 1);
        assert_eq!(first.timing.captures, 1);
        // Same sweep with a cold in-memory cache key path is impossible
        // to force here (the global cache now holds the trace), so check
        // persistence directly: the store has the entry on disk.
        let store = TraceStore::open(&dir).unwrap();
        assert!(store.load("h264ref", settings.scale, settings.seed).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_benches_yield_empty_suites() {
        let s = tiny();
        let grids = run_grid(&s, &[], &[s.core(), s.core()]);
        assert_eq!(grids.len(), 2);
        assert!(grids.iter().all(|g| g.rows.is_empty()));
    }
}
