//! Process-wide capture-once / replay-many trace cache.
//!
//! A sweep grid runs the same workload under many timing configurations;
//! a `paper all` session runs the same 19 workloads under a dozen
//! experiment grids. The dynamic instruction stream depends only on
//! (workload, scale, seed, length), so this cache captures each stream
//! **once** per process and hands out `Arc<Trace>` clones to every
//! consumer — worker threads of one sweep and successive experiments
//! alike. See "Trace layer" in `ARCHITECTURE.md` for the dataflow and
//! memory-footprint discussion; `trace_cache = off` (or the binaries'
//! `--no-trace-cache`) bypasses the layer entirely and re-executes
//! functionally inline, byte-identically.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::runner::RunSettings;
use vpsim_isa::Trace;
use vpsim_workloads::Benchmark;

/// What makes two captures interchangeable: the workload identity and the
/// generation parameters that shape its program and data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct TraceKey {
    name: &'static str,
    scale: usize,
    seed: u64,
}

struct Entry {
    /// Capture limit this trace was taken with.
    budget: u64,
    /// The program ended before the budget: the trace is the complete
    /// execution and satisfies *any* request.
    complete: bool,
    trace: Arc<Trace>,
}

impl Entry {
    fn covers(&self, budget: u64) -> bool {
        self.complete || self.budget >= budget
    }
}

/// A keyed store of captured traces. Most callers want the process-wide
/// [`TraceCache::global`]; separate instances exist for tests.
#[derive(Default)]
pub struct TraceCache {
    entries: Mutex<HashMap<TraceKey, Entry>>,
}

impl TraceCache {
    /// An empty cache.
    pub fn new() -> Self {
        TraceCache::default()
    }

    /// The process-wide cache shared by the sweep engine, the experiment
    /// functions and the binaries.
    pub fn global() -> &'static TraceCache {
        static GLOBAL: OnceLock<TraceCache> = OnceLock::new();
        GLOBAL.get_or_init(TraceCache::new)
    }

    /// The trace for `bench` under `settings`' generation parameters,
    /// covering at least `budget` µops (or the whole program, if it is
    /// shorter). Returns `(trace, freshly_captured)`: `false` means a
    /// cache hit.
    ///
    /// Capture runs outside the lock, so concurrent workers never block
    /// on each other's captures; if two race on the same key, both
    /// capture identical traces (the whole stack is deterministic) and
    /// one wins the insert — results are unaffected.
    pub fn get(
        &self,
        settings: &RunSettings,
        bench: &Benchmark,
        budget: u64,
    ) -> (Arc<Trace>, bool) {
        let key = TraceKey { name: bench.name, scale: settings.scale, seed: settings.seed };
        if let Some(entry) = self.entries.lock().unwrap().get(&key) {
            if entry.covers(budget) {
                return (Arc::clone(&entry.trace), false);
            }
        }
        let program = (bench.build)(&settings.params());
        let trace = Arc::new(Trace::capture(&program, budget));
        let complete = (trace.len() as u64) < budget;
        let mut entries = self.entries.lock().unwrap();
        match entries.get(&key) {
            // A racing worker (or a longer earlier capture) already
            // satisfies the request; keep the established entry.
            Some(entry) if entry.covers(budget) => (Arc::clone(&entry.trace), false),
            _ => {
                entries.insert(key, Entry { budget, complete, trace: Arc::clone(&trace) });
                (trace, true)
            }
        }
    }

    /// Number of cached traces.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total approximate heap footprint of the cached traces, in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.entries.lock().unwrap().values().map(|e| e.trace.approx_bytes()).sum()
    }

    /// Drop every cached trace (frees the memory once the last `Arc`
    /// clone held by a running job is gone).
    pub fn clear(&self) {
        self.entries.lock().unwrap().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpsim_workloads::workload;

    fn settings() -> RunSettings {
        RunSettings { warmup: 100, measure: 400, ..RunSettings::default() }
    }

    #[test]
    fn second_request_is_a_hit_sharing_the_same_trace() {
        let cache = TraceCache::new();
        let bench = workload("k:tight").unwrap();
        let (a, fresh_a) = cache.get(&settings(), &bench, 1_000);
        let (b, fresh_b) = cache.get(&settings(), &bench, 1_000);
        assert!(fresh_a && !fresh_b);
        assert!(Arc::ptr_eq(&a, &b), "hits share the captured trace");
        assert_eq!(cache.len(), 1);
        assert!(cache.approx_bytes() > 0);
    }

    #[test]
    fn longer_budget_recaptures_and_shorter_reuses() {
        let cache = TraceCache::new();
        let bench = workload("gzip").unwrap();
        let (short, _) = cache.get(&settings(), &bench, 500);
        assert_eq!(short.len(), 500);
        let (long, fresh) = cache.get(&settings(), &bench, 2_000);
        assert!(fresh, "insufficient entry must be re-captured");
        assert_eq!(long.len(), 2_000);
        // The longer capture replaced the short one and now serves both.
        let (again, fresh) = cache.get(&settings(), &bench, 500);
        assert!(!fresh);
        assert!(Arc::ptr_eq(&long, &again));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn complete_traces_satisfy_any_budget() {
        use vpsim_workloads::{Class, Suite, WorkloadParams};
        // The registry workloads run forever by design, so build a finite
        // program to exercise the "program ended before the budget" path.
        fn finite(_: &WorkloadParams) -> vpsim_isa::Program {
            let mut b = vpsim_isa::ProgramBuilder::new();
            let (i, n) = (vpsim_isa::Reg::int(1), vpsim_isa::Reg::int(2));
            b.load_imm(n, 50);
            let top = b.bind_label();
            b.addi(i, i, 1);
            b.blt(i, n, top);
            b.halt();
            b.build().unwrap()
        }
        let bench = Benchmark {
            name: "finite-test",
            suite: Suite::Micro,
            class: Class::Int,
            build: finite,
        };
        let cache = TraceCache::new();
        let (full, _) = cache.get(&settings(), &bench, 10_000);
        assert!((full.len() as u64) < 10_000, "the program halts before the budget");
        // A complete trace satisfies even a larger request without
        // re-capturing.
        let (hit, fresh) = cache.get(&settings(), &bench, 1_000_000);
        assert!(!fresh);
        assert!(Arc::ptr_eq(&full, &hit));
    }

    #[test]
    fn distinct_scale_or_seed_gets_its_own_trace() {
        let cache = TraceCache::new();
        let bench = workload("gzip").unwrap();
        cache.get(&settings(), &bench, 500);
        cache.get(&RunSettings { seed: 99, ..settings() }, &bench, 500);
        cache.get(&RunSettings { scale: 2, ..settings() }, &bench, 500);
        assert_eq!(cache.len(), 3);
        cache.clear();
        assert!(cache.is_empty());
    }
}
