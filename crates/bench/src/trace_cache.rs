//! Process-wide capture-once / replay-many trace cache.
//!
//! A sweep grid runs the same workload under many timing configurations;
//! a `paper all` session runs the same 19 workloads under a dozen
//! experiment grids. The dynamic instruction stream depends only on
//! (workload, scale, seed, length), so this cache captures each stream
//! **once** per process and hands out `Arc<Trace>` clones to every
//! consumer — worker threads of one sweep and successive experiments
//! alike. See "Trace layer" in `ARCHITECTURE.md` for the dataflow and
//! memory-footprint discussion; `trace_cache = off` (or the binaries'
//! `--no-trace-cache`) bypasses the layer entirely and re-executes
//! functionally inline, byte-identically.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::runner::RunSettings;
use crate::store::{MappedTrace, TraceStore};
use vpsim_isa::{Trace, TraceView};
use vpsim_workloads::Benchmark;

/// A replayable trace that is either owned on the heap or mapped straight
/// from a [`TraceStore`] entry file.
///
/// The sweep engine replays from a [`TraceView`] either way, so a store
/// hit can stay zero-copy (page-cache backed, no decode of the big SoA
/// sections) while a fresh capture or in-memory cache hit keeps sharing
/// the owned `Arc<Trace>`.
#[derive(Debug)]
pub enum SharedTrace {
    /// Heap-owned trace from a capture or the in-memory cache.
    Owned(Arc<Trace>),
    /// Validated store entry replayed in place (mmap or read fallback).
    Mapped(MappedTrace),
}

impl SharedTrace {
    /// Number of µop records.
    pub fn len(&self) -> usize {
        match self {
            SharedTrace::Owned(trace) => trace.len(),
            SharedTrace::Mapped(mapped) => mapped.len(),
        }
    }

    /// `true` if the trace holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The borrowed view of a mapped entry, if this trace is one. Owned
    /// traces replay through [`Trace::cursor`] instead (their sections
    /// are already decoded; there is no raw-byte view to borrow).
    pub fn mapped_view(&self) -> Option<TraceView<'_>> {
        match self {
            SharedTrace::Owned(_) => None,
            SharedTrace::Mapped(mapped) => Some(mapped.view()),
        }
    }

    /// An owned `Arc<Trace>`, decoding the mapped sections if necessary —
    /// for consumers that need `&Trace` (interval sampling).
    pub fn to_owned_trace(&self) -> Arc<Trace> {
        match self {
            SharedTrace::Owned(trace) => Arc::clone(trace),
            SharedTrace::Mapped(mapped) => Arc::new(mapped.to_trace()),
        }
    }

    /// `true` if this trace replays from a store entry in place.
    pub fn is_mapped(&self) -> bool {
        matches!(self, SharedTrace::Mapped(_))
    }
}

/// What makes two captures interchangeable: the workload identity and the
/// generation parameters that shape its program and data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct TraceKey {
    name: &'static str,
    scale: usize,
    seed: u64,
}

struct Entry {
    /// Capture limit this trace was taken with.
    budget: u64,
    /// The program ended before the budget: the trace is the complete
    /// execution and satisfies *any* request.
    complete: bool,
    trace: Arc<Trace>,
}

impl Entry {
    fn covers(&self, budget: u64) -> bool {
        self.complete || self.budget >= budget
    }
}

/// A keyed store of captured traces. Most callers want the process-wide
/// [`TraceCache::global`]; separate instances exist for tests.
#[derive(Default)]
pub struct TraceCache {
    entries: Mutex<HashMap<TraceKey, Entry>>,
}

impl TraceCache {
    /// An empty cache.
    pub fn new() -> Self {
        TraceCache::default()
    }

    /// The process-wide cache shared by the sweep engine, the experiment
    /// functions and the binaries.
    pub fn global() -> &'static TraceCache {
        static GLOBAL: OnceLock<TraceCache> = OnceLock::new();
        GLOBAL.get_or_init(TraceCache::new)
    }

    /// The trace for `bench` under `settings`' generation parameters,
    /// covering at least `budget` µops (or the whole program, if it is
    /// shorter). Returns `(trace, freshly_captured)`: `false` means a
    /// cache hit.
    ///
    /// Capture runs outside the lock, so concurrent workers never block
    /// on each other's captures; if two race on the same key, both
    /// capture identical traces (the whole stack is deterministic) and
    /// one wins the insert — results are unaffected.
    pub fn get(
        &self,
        settings: &RunSettings,
        bench: &Benchmark,
        budget: u64,
    ) -> (Arc<Trace>, bool) {
        self.get_with_store(settings, bench, budget, None)
    }

    /// Like [`TraceCache::get`], but falling through to an on-disk
    /// [`TraceStore`] between the in-memory map and a fresh capture:
    /// in-memory hit, else disk hit (counted on the store), else capture
    /// — which is then persisted, so a capture made by one process is a
    /// disk hit for every later one. Corrupt store entries are evicted
    /// inside [`TraceStore::load`] (with a stderr warning) and simply
    /// count as misses here — the recapture transparently heals the
    /// store.
    pub fn get_with_store(
        &self,
        settings: &RunSettings,
        bench: &Benchmark,
        budget: u64,
        store: Option<&TraceStore>,
    ) -> (Arc<Trace>, bool) {
        let key = TraceKey { name: bench.name, scale: settings.scale, seed: settings.seed };
        if let Some(entry) = self.entries.lock().unwrap().get(&key) {
            if entry.covers(budget) {
                return (Arc::clone(&entry.trace), false);
            }
        }
        if let Some(store) = store {
            match store.load(bench.name, settings.scale, settings.seed) {
                Some(stored) if stored.covers(budget) => {
                    store.record_hit();
                    let mut entries = self.entries.lock().unwrap();
                    return match entries.get(&key) {
                        // A racing worker established a covering entry
                        // while we read the disk; keep it.
                        Some(entry) if entry.covers(budget) => (Arc::clone(&entry.trace), false),
                        _ => {
                            let trace = Arc::clone(&stored.trace);
                            entries.insert(
                                key,
                                Entry {
                                    budget: stored.budget,
                                    complete: stored.complete,
                                    trace: Arc::clone(&trace),
                                },
                            );
                            (trace, false)
                        }
                    };
                }
                _ => store.record_miss(),
            }
        }
        self.capture(settings, bench, budget, store, key)
    }

    /// Like [`TraceCache::get_with_store`], but a covering store entry is
    /// returned as a [`SharedTrace::Mapped`] replayed straight from the
    /// entry file (page-cache backed — no decode, no big allocations)
    /// instead of being decoded into the in-memory map. In-memory hits
    /// and fresh captures come back as [`SharedTrace::Owned`].
    pub fn get_shared_with_store(
        &self,
        settings: &RunSettings,
        bench: &Benchmark,
        budget: u64,
        store: Option<&TraceStore>,
    ) -> (SharedTrace, bool) {
        let key = TraceKey { name: bench.name, scale: settings.scale, seed: settings.seed };
        if let Some(entry) = self.entries.lock().unwrap().get(&key) {
            if entry.covers(budget) {
                return (SharedTrace::Owned(Arc::clone(&entry.trace)), false);
            }
        }
        if let Some(store) = store {
            match store.map(bench.name, settings.scale, settings.seed) {
                Some(mapped) if mapped.covers(budget) => {
                    store.record_hit();
                    return (SharedTrace::Mapped(mapped), false);
                }
                _ => store.record_miss(),
            }
        }
        let (trace, fresh) = self.capture(settings, bench, budget, store, key);
        (SharedTrace::Owned(trace), fresh)
    }

    /// Capture tail shared by the owned and mapped lookup paths: build
    /// the program, capture, persist to the store, and publish to the
    /// in-memory map unless a racing worker beat us to a covering entry.
    fn capture(
        &self,
        settings: &RunSettings,
        bench: &Benchmark,
        budget: u64,
        store: Option<&TraceStore>,
        key: TraceKey,
    ) -> (Arc<Trace>, bool) {
        let program = (bench.build)(&settings.params());
        let trace = Arc::new(Trace::capture(&program, budget));
        let complete = (trace.len() as u64) < budget;
        if let Some(store) = store {
            store.save(bench.name, settings.scale, settings.seed, budget, complete, &trace);
        }
        let mut entries = self.entries.lock().unwrap();
        match entries.get(&key) {
            // A racing worker (or a longer earlier capture) already
            // satisfies the request; keep the established entry.
            Some(entry) if entry.covers(budget) => (Arc::clone(&entry.trace), false),
            _ => {
                entries.insert(key, Entry { budget, complete, trace: Arc::clone(&trace) });
                (trace, true)
            }
        }
    }

    /// Number of cached traces.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total approximate heap footprint of the cached traces, in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.entries.lock().unwrap().values().map(|e| e.trace.approx_bytes()).sum()
    }

    /// Drop every cached trace (frees the memory once the last `Arc`
    /// clone held by a running job is gone).
    pub fn clear(&self) {
        self.entries.lock().unwrap().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpsim_workloads::workload;

    fn settings() -> RunSettings {
        RunSettings { warmup: 100, measure: 400, ..RunSettings::default() }
    }

    #[test]
    fn second_request_is_a_hit_sharing_the_same_trace() {
        let cache = TraceCache::new();
        let bench = workload("k:tight").unwrap();
        let (a, fresh_a) = cache.get(&settings(), &bench, 1_000);
        let (b, fresh_b) = cache.get(&settings(), &bench, 1_000);
        assert!(fresh_a && !fresh_b);
        assert!(Arc::ptr_eq(&a, &b), "hits share the captured trace");
        assert_eq!(cache.len(), 1);
        assert!(cache.approx_bytes() > 0);
    }

    #[test]
    fn longer_budget_recaptures_and_shorter_reuses() {
        let cache = TraceCache::new();
        let bench = workload("gzip").unwrap();
        let (short, _) = cache.get(&settings(), &bench, 500);
        assert_eq!(short.len(), 500);
        let (long, fresh) = cache.get(&settings(), &bench, 2_000);
        assert!(fresh, "insufficient entry must be re-captured");
        assert_eq!(long.len(), 2_000);
        // The longer capture replaced the short one and now serves both.
        let (again, fresh) = cache.get(&settings(), &bench, 500);
        assert!(!fresh);
        assert!(Arc::ptr_eq(&long, &again));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn complete_traces_satisfy_any_budget() {
        use vpsim_workloads::{Class, Suite, WorkloadParams};
        // The registry workloads run forever by design, so build a finite
        // program to exercise the "program ended before the budget" path.
        fn finite(_: &WorkloadParams) -> vpsim_isa::Program {
            let mut b = vpsim_isa::ProgramBuilder::new();
            let (i, n) = (vpsim_isa::Reg::int(1), vpsim_isa::Reg::int(2));
            b.load_imm(n, 50);
            let top = b.bind_label();
            b.addi(i, i, 1);
            b.blt(i, n, top);
            b.halt();
            b.build().unwrap()
        }
        let bench = Benchmark {
            name: "finite-test",
            suite: Suite::Micro,
            class: Class::Int,
            build: finite,
        };
        let cache = TraceCache::new();
        let (full, _) = cache.get(&settings(), &bench, 10_000);
        assert!((full.len() as u64) < 10_000, "the program halts before the budget");
        // A complete trace satisfies even a larger request without
        // re-capturing.
        let (hit, fresh) = cache.get(&settings(), &bench, 1_000_000);
        assert!(!fresh);
        assert!(Arc::ptr_eq(&full, &hit));
    }

    #[test]
    fn store_fall_through_persists_across_cache_instances() {
        let dir = crate::store::scratch_dir("fallthrough");
        let store = TraceStore::open(&dir).unwrap();
        let bench = workload("gzip").unwrap();
        let s = settings();
        let (a, fresh) = TraceCache::new().get_with_store(&s, &bench, 1_000, Some(&store));
        assert!(fresh, "empty store: the trace must be captured");
        assert_eq!((store.hits(), store.misses()), (0, 1));
        // A fresh in-memory cache (think: a new process) hits the disk
        // store instead of recapturing.
        let (b, fresh) = TraceCache::new().get_with_store(&s, &bench, 1_000, Some(&store));
        assert!(!fresh, "the persisted capture must serve the second process");
        assert_eq!((store.hits(), store.misses()), (1, 1));
        assert_eq!(*a, *b);
        // A larger budget outgrows the stored entry: recapture + re-save.
        let (long, fresh) = TraceCache::new().get_with_store(&s, &bench, 2_000, Some(&store));
        assert!(fresh);
        assert_eq!(long.len(), 2_000);
        assert_eq!((store.hits(), store.misses()), (1, 2));
        let (again, fresh) = TraceCache::new().get_with_store(&s, &bench, 2_000, Some(&store));
        assert!(!fresh);
        assert_eq!(*again, *long);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_store_entry_is_evicted_and_recaptured() {
        let dir = crate::store::scratch_dir("bitflip");
        let store = TraceStore::open(&dir).unwrap();
        let bench = workload("mcf").unwrap();
        let s = settings();
        let (original, _) = TraceCache::new().get_with_store(&s, &bench, 800, Some(&store));
        assert_eq!((store.hits(), store.misses()), (0, 1));
        // Flip one bit of the single stored entry.
        let entry = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|x| x == "bin"))
            .expect("one stored entry");
        let mut bytes = std::fs::read(&entry).unwrap();
        let mid = bytes.len() / 3;
        bytes[mid] ^= 0x40;
        std::fs::write(&entry, &bytes).unwrap();
        // A fresh cache must detect the corruption (checksum mismatch),
        // evict the entry, and transparently recapture the same trace.
        let (recaptured, fresh) = TraceCache::new().get_with_store(&s, &bench, 800, Some(&store));
        assert!(fresh, "a corrupt entry must be recaptured, not served");
        assert!(!entry.exists() || std::fs::read(&entry).unwrap() != bytes, "evicted or rewritten");
        assert_eq!(*recaptured, *original);
        assert_eq!((store.hits(), store.misses()), (0, 2));
        // The recapture healed the store: the next process hits disk.
        let (healed, fresh) = TraceCache::new().get_with_store(&s, &bench, 800, Some(&store));
        assert!(!fresh);
        assert_eq!(*healed, *original);
        assert_eq!((store.hits(), store.misses()), (1, 2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shared_lookup_maps_store_hits_and_owns_everything_else() {
        let dir = crate::store::scratch_dir("shared");
        let store = TraceStore::open(&dir).unwrap();
        let bench = workload("gzip").unwrap();
        let s = settings();
        // Empty store: capture, owned, counted as a miss.
        let cache = TraceCache::new();
        let (a, fresh) = cache.get_shared_with_store(&s, &bench, 1_000, Some(&store));
        assert!(fresh && !a.is_mapped());
        assert_eq!((store.hits(), store.misses()), (0, 1));
        // Same cache again: in-memory hit, still owned.
        let (b, fresh) = cache.get_shared_with_store(&s, &bench, 1_000, Some(&store));
        assert!(!fresh && !b.is_mapped());
        assert_eq!((store.hits(), store.misses()), (0, 1));
        // A fresh cache (new process): the persisted entry is mapped in
        // place, not decoded into the map, and counted as a store hit.
        let fresh_cache = TraceCache::new();
        let (c, fresh) = fresh_cache.get_shared_with_store(&s, &bench, 1_000, Some(&store));
        assert!(!fresh && c.is_mapped());
        assert_eq!((store.hits(), store.misses()), (1, 1));
        assert!(fresh_cache.is_empty(), "mapped hits must not fill the in-memory map");
        // The mapped entry replays the exact owned stream.
        let owned = a.to_owned_trace();
        let view = c.mapped_view().expect("mapped trace has a view");
        assert!(view.cursor().eq(owned.cursor()), "mapped replay matches owned");
        assert_eq!(*c.to_owned_trace(), *owned);
        assert_eq!(c.len(), owned.len());
        assert!(!c.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn distinct_scale_or_seed_gets_its_own_trace() {
        let cache = TraceCache::new();
        let bench = workload("gzip").unwrap();
        cache.get(&settings(), &bench, 500);
        cache.get(&RunSettings { seed: 99, ..settings() }, &bench, 500);
        cache.get(&RunSettings { scale: 2, ..settings() }, &bench, 500);
        assert_eq!(cache.len(), 3);
        cache.clear();
        assert!(cache.is_empty());
    }
}
