//! Experiment harness for the vpsim reproduction: the parallel sweep
//! engine, the per-table/figure experiment functions, and the `paper`,
//! `simulate` and `sweep` binaries.
//!
//! * [`runner`] — simulation sizing ([`RunSettings`]) and per-suite result
//!   bookkeeping ([`SuiteResults`]).
//! * [`sweep`] — the deterministic parallel sweep engine: a declarative
//!   [`sweep::SweepSpec`] grid expanded into independent jobs, executed on
//!   a scoped worker pool with a bounded work queue, and merged in job
//!   order so parallel output is bit-identical to serial.
//! * [`trace_cache`] — capture-once / replay-many: each workload's dynamic
//!   instruction trace is captured once per process and shared
//!   (`Arc<Trace>`) across every grid cell, worker thread and experiment,
//!   instead of re-running the functional executor inline per job.
//!   `RunSettings::trace_cache = false` (`--no-trace-cache`) restores
//!   inline execution, byte-identically.
//! * [`store`] / [`protocol`] / [`remote`] — the service layer: the
//!   persistent on-disk trace store and per-cell result cache, the
//!   newline-delimited wire protocol shared with the `vpsim-serve` job
//!   server, and the `sweep --remote` client.
//! * [`experiments`] — one function per table/figure of the paper, each
//!   returning a [`vpsim_stats::table::Table`] whose rows mirror what the
//!   paper reports. See `ARCHITECTURE.md` at the repository root for the
//!   paper-concept-to-crate map.
//!
//! # Examples
//!
//! Run a two-benchmark grid on two worker threads:
//!
//! ```
//! use vpsim_bench::sweep::run_grid;
//! use vpsim_bench::RunSettings;
//!
//! let s = RunSettings { warmup: 1_000, measure: 5_000, threads: 2, ..RunSettings::default() };
//! let benches = vpsim_workloads::all_benchmarks();
//! let suites = run_grid(&s, &benches[..2], &[s.core()]);
//! assert_eq!(suites.len(), 1);
//! assert_eq!(suites[0].rows.len(), 2);
//! ```

pub mod experiments;
pub mod protocol;
pub mod remote;
pub mod runner;
pub mod scenario;
pub mod store;
pub mod sweep;
pub mod trace_cache;

pub use protocol::{Format, View};
pub use runner::{RunSettings, SuiteResults};
pub use scenario::{Scenario, ScenarioBuilder};
pub use store::{ResultCache, Stores, TraceStore};
pub use sweep::{SweepResults, SweepSpec, SweepTiming};
pub use trace_cache::{SharedTrace, TraceCache};
pub use vpsim_uarch::RunResult;
