//! Experiment runner shared by the `paper` binary and the Criterion
//! benches: one function per table/figure of the paper, each returning a
//! [`vpsim_stats::table::Table`] whose rows mirror what the paper reports.
//!
//! See `EXPERIMENTS.md` for the paper-vs-measured record and `DESIGN.md`
//! §5 for the experiment index.

pub mod experiments;
pub mod runner;

pub use runner::{RunSettings, SuiteResults};
