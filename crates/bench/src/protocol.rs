//! Wire protocol shared by the `vpsim-serve` job server and the `sweep
//! --remote` client.
//!
//! Newline-delimited text over TCP, deliberately simple enough to drive
//! with `nc`. One request per connection lifetime-phase; the connection
//! stays open across requests and across errors.
//!
//! Client → server:
//!
//! ```text
//! SUBMIT <view> <format>     view: long|matrix   format: ascii|csv|json
//! <scenario text, key = value lines>
//! END
//! ```
//!
//! plus `PING` (liveness) and `SHUTDOWN` (graceful stop). Server →
//! client, for a submission:
//!
//! ```text
//! OK <ncells>
//! CELL <index> <benchmark> <point-label> <ipc>      (strict index order)
//! …
//! TABLE <nbytes>
//! <nbytes of rendered table, byte-identical to a local run's stdout>
//! STATS result_cache_hits=… cells_simulated=… trace_store_hits=… trace_store_misses=…
//! DONE
//! ```
//!
//! Any failure — a malformed scenario above all — is a single `ERR <msg>`
//! line and the connection stays open for the next request. Responses to
//! `PING`/`SHUTDOWN` are `PONG`/`BYE`.
//!
//! Determinism: the sweep engine streams cells in job-index order and is
//! bit-identical across thread counts, so resubmitting a scenario yields
//! byte-identical `CELL` and `TABLE` payloads — whether the cells were
//! simulated or served from the persistent result cache. Only the `STATS`
//! diagnostics line reflects cache state.

use crate::sweep::{SweepJob, SweepResults, SweepTiming};
use vpsim_uarch::RunResult;

/// Table orientation of a submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum View {
    /// Long-form table: one row per (grid point, benchmark).
    Long,
    /// Speedup matrix: benchmark rows × grid-point columns.
    Matrix,
}

impl std::fmt::Display for View {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            View::Long => "long",
            View::Matrix => "matrix",
        })
    }
}

impl std::str::FromStr for View {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "long" => Ok(View::Long),
            "matrix" => Ok(View::Matrix),
            other => Err(format!("unknown view {other} (long|matrix)")),
        }
    }
}

/// Rendering format of a submission's final table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Aligned text, exactly what a local `sweep` prints to stdout.
    Ascii,
    /// Comma-separated values.
    Csv,
    /// JSON array of row objects.
    Json,
}

impl std::fmt::Display for Format {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Format::Ascii => "ascii",
            Format::Csv => "csv",
            Format::Json => "json",
        })
    }
}

impl std::str::FromStr for Format {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "ascii" => Ok(Format::Ascii),
            "csv" => Ok(Format::Csv),
            "json" => Ok(Format::Json),
            other => Err(format!("unknown format {other} (ascii|csv|json)")),
        }
    }
}

/// Terminator of a `SUBMIT` scenario block.
pub const END_MARKER: &str = "END";
/// Liveness probe; answered with [`PONG`].
pub const PING: &str = "PING";
/// Liveness answer.
pub const PONG: &str = "PONG";
/// Graceful server stop; answered with [`BYE`].
pub const SHUTDOWN: &str = "SHUTDOWN";
/// Acknowledgement of [`SHUTDOWN`].
pub const BYE: &str = "BYE";
/// Last line of a successful submission response.
pub const DONE: &str = "DONE";

/// The `SUBMIT <view> <format>` request line.
pub fn submit_line(view: View, format: Format) -> String {
    format!("SUBMIT {view} {format}")
}

/// Parse a `SUBMIT <view> <format>` line (`None` if it is not a SUBMIT
/// at all, `Some(Err)` if it is one with bad arguments).
pub fn parse_submit(line: &str) -> Option<Result<(View, Format), String>> {
    let rest = line.strip_prefix("SUBMIT")?;
    let mut words = rest.split_whitespace();
    let parsed = match (words.next(), words.next(), words.next()) {
        (Some(view), Some(format), None) => {
            view.parse::<View>().and_then(|v| format.parse::<Format>().map(|f| (v, f)))
        }
        _ => Err("SUBMIT takes exactly: SUBMIT <long|matrix> <ascii|csv|json>".into()),
    };
    Some(parsed)
}

/// The `OK <ncells>` acknowledgement of an accepted submission.
pub fn ok_line(ncells: usize) -> String {
    format!("OK {ncells}")
}

/// One streamed per-cell result line, in strict job-index order:
/// `CELL <index> <benchmark> <point-label> <ipc>`.
pub fn cell_line(job: &SweepJob, result: &RunResult) -> String {
    let label = match &job.point {
        Some(p) => p.label(),
        None => "baseline".to_string(),
    };
    format!("CELL {} {} {} {:.3}", job.index, job.bench.name, label, result.metrics.ipc())
}

/// The `TABLE <nbytes>` header announcing the rendered table payload.
pub fn table_header(nbytes: usize) -> String {
    format!("TABLE {nbytes}")
}

/// The `STATS …` diagnostics line of a finished submission.
pub fn stats_line(timing: &SweepTiming) -> String {
    format!(
        "STATS result_cache_hits={} cells_simulated={} trace_store_hits={} trace_store_misses={}",
        timing.result_cache_hits,
        timing.jobs as u64 - timing.result_cache_hits,
        timing.trace_store_hits,
        timing.trace_store_misses,
    )
}

/// An `ERR <msg>` reply: the message is collapsed to one line so it can
/// never break the framing.
pub fn err_line(msg: &str) -> String {
    let one_line: String =
        msg.chars().map(|c| if c == '\n' || c == '\r' { ' ' } else { c }).collect();
    format!("ERR {}", one_line.trim())
}

/// Render a submission's final table exactly as a local `sweep` run
/// prints it to stdout: `to_csv()`/`to_json()` verbatim for those
/// formats, and the aligned text plus the `println!` newline for ascii —
/// so `sweep --remote` output is byte-identical to local output.
pub fn render_output(results: &SweepResults, view: View, format: Format) -> String {
    let table = match view {
        View::Long => results.table(),
        View::Matrix => results.matrix(),
    };
    match format {
        Format::Ascii => format!("{table}\n"),
        Format::Csv => table.to_csv(),
        Format::Json => table.to_json(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_and_format_round_trip() {
        for view in [View::Long, View::Matrix] {
            assert_eq!(view.to_string().parse::<View>().unwrap(), view);
        }
        for format in [Format::Ascii, Format::Csv, Format::Json] {
            assert_eq!(format.to_string().parse::<Format>().unwrap(), format);
        }
        assert!("wide".parse::<View>().is_err());
        assert!("yaml".parse::<Format>().is_err());
    }

    #[test]
    fn submit_lines_parse_back() {
        let line = submit_line(View::Matrix, Format::Csv);
        assert_eq!(line, "SUBMIT matrix csv");
        assert_eq!(parse_submit(&line).unwrap().unwrap(), (View::Matrix, Format::Csv));
        assert!(parse_submit("PING").is_none());
        assert!(parse_submit("SUBMIT").unwrap().is_err());
        assert!(parse_submit("SUBMIT long").unwrap().is_err());
        assert!(parse_submit("SUBMIT long ascii extra").unwrap().is_err());
        assert!(parse_submit("SUBMIT sideways ascii").unwrap().is_err());
    }

    #[test]
    fn err_lines_never_contain_newlines() {
        let err = err_line("line 1: bad key\nline 2: worse");
        assert_eq!(err, "ERR line 1: bad key line 2: worse");
        assert_eq!(err.lines().count(), 1);
    }

    #[test]
    fn stats_line_reports_simulated_complement() {
        let timing = SweepTiming {
            jobs: 10,
            result_cache_hits: 7,
            trace_store_hits: 2,
            trace_store_misses: 1,
            ..SweepTiming::default()
        };
        assert_eq!(
            stats_line(&timing),
            "STATS result_cache_hits=7 cells_simulated=3 trace_store_hits=2 trace_store_misses=1"
        );
    }
}
