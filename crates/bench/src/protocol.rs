//! Wire protocol shared by the `vpsim-serve` job server and the `sweep
//! --remote` client.
//!
//! Newline-delimited text over TCP, deliberately simple enough to drive
//! with `nc`. One request per connection lifetime-phase; the connection
//! stays open across requests and across errors.
//!
//! Client → server:
//!
//! ```text
//! SUBMIT <view> <format> [shard <i>/<n>]
//!     view: long|matrix   format: ascii|csv|json
//! <scenario text, key = value lines>
//! END
//! ```
//!
//! plus `PING` (liveness) and `SHUTDOWN` (graceful stop). Server →
//! client, for a full (unsharded) submission:
//!
//! ```text
//! OK <ncells>
//! CELL <index> <benchmark> <point-label> <ipc>      (strict index order)
//! …
//! TABLE <nbytes>
//! <nbytes of rendered table, byte-identical to a local run's stdout>
//! STATS result_cache_hits=… cells_simulated=… trace_store_hits=… trace_store_misses=… queue_wait_ms=… wall_ms=…
//! DONE
//! ```
//!
//! A *sharded* submission (`shard <i>/<n>`) restricts the server to the
//! grid cells whose `index % n == i`. The reply carries the raw per-cell
//! counters instead of a rendered table — `CELL` progress lines for the
//! shard's cells, then one `RESULT <index> <hex(RunResult)>` frame per
//! cell — and the client merges the shards by index
//! ([`crate::sweep::SweepSpec::assemble`]) into the exact table a local
//! run prints. N servers pointed at one shared `--store` directory cover
//! the grid disjointly and dedupe finished cells through the shared
//! result cache.
//!
//! Any failure — a malformed scenario above all — is a single `ERR <msg>`
//! line and the connection stays open for the next request. A loaded
//! server refuses with `ERR server busy … RETRY-AFTER <ms>`; the client
//! backs off (bounded, jittered) and retries. Responses to
//! `PING`/`SHUTDOWN` are `PONG`/`BYE`.
//!
//! Determinism: the sweep engine streams cells in job-index order and is
//! bit-identical across thread counts, so resubmitting a scenario yields
//! byte-identical `CELL` and `TABLE` payloads — whether the cells were
//! simulated or served from the persistent result cache. Only the `STATS`
//! diagnostics line reflects cache state.

use crate::sweep::{SweepJob, SweepResults, SweepTiming};
use vpsim_uarch::RunResult;

/// Table orientation of a submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum View {
    /// Long-form table: one row per (grid point, benchmark).
    Long,
    /// Speedup matrix: benchmark rows × grid-point columns.
    Matrix,
}

impl std::fmt::Display for View {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            View::Long => "long",
            View::Matrix => "matrix",
        })
    }
}

impl std::str::FromStr for View {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "long" => Ok(View::Long),
            "matrix" => Ok(View::Matrix),
            other => Err(format!("unknown view {other} (long|matrix)")),
        }
    }
}

/// Rendering format of a submission's final table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Aligned text, exactly what a local `sweep` prints to stdout.
    Ascii,
    /// Comma-separated values.
    Csv,
    /// JSON array of row objects.
    Json,
}

impl std::fmt::Display for Format {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Format::Ascii => "ascii",
            Format::Csv => "csv",
            Format::Json => "json",
        })
    }
}

impl std::str::FromStr for Format {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "ascii" => Ok(Format::Ascii),
            "csv" => Ok(Format::Csv),
            "json" => Ok(Format::Json),
            other => Err(format!("unknown format {other} (ascii|csv|json)")),
        }
    }
}

/// Terminator of a `SUBMIT` scenario block.
pub const END_MARKER: &str = "END";
/// Liveness probe; answered with [`PONG`].
pub const PING: &str = "PING";
/// Liveness answer.
pub const PONG: &str = "PONG";
/// Graceful server stop; answered with [`BYE`].
pub const SHUTDOWN: &str = "SHUTDOWN";
/// Acknowledgement of [`SHUTDOWN`].
pub const BYE: &str = "BYE";
/// Last line of a successful submission response.
pub const DONE: &str = "DONE";

/// A parsed `SUBMIT` request line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Submit {
    /// Table orientation.
    pub view: View,
    /// Rendering format.
    pub format: Format,
    /// `Some((i, n))` restricts the server to cells with `index % n == i`
    /// and switches the reply to raw `RESULT` frames.
    pub shard: Option<(u32, u32)>,
}

/// The `SUBMIT <view> <format>` request line (unsharded).
pub fn submit_line(view: View, format: Format) -> String {
    format!("SUBMIT {view} {format}")
}

/// The `SUBMIT <view> <format> shard <i>/<n>` request line.
pub fn submit_line_sharded(view: View, format: Format, shard: (u32, u32)) -> String {
    format!("SUBMIT {view} {format} shard {}/{}", shard.0, shard.1)
}

fn parse_shard(spec: &str) -> Option<(u32, u32)> {
    let (i, n) = spec.split_once('/')?;
    let (i, n) = (i.parse::<u32>().ok()?, n.parse::<u32>().ok()?);
    (n >= 1 && i < n).then_some((i, n))
}

/// Parse a `SUBMIT <view> <format> [shard <i>/<n>]` line (`None` if it
/// is not a SUBMIT at all, `Some(Err)` if it is one with bad arguments).
pub fn parse_submit(line: &str) -> Option<Result<Submit, String>> {
    const USAGE: &str =
        "SUBMIT takes: SUBMIT <long|matrix> <ascii|csv|json> [shard <i>/<n>, i < n]";
    let rest = line.strip_prefix("SUBMIT")?;
    let words: Vec<&str> = rest.split_whitespace().collect();
    let parsed = match words.as_slice() {
        [view, format] => view.parse::<View>().and_then(|v| {
            format.parse::<Format>().map(|f| Submit { view: v, format: f, shard: None })
        }),
        [view, format, "shard", spec] => match parse_shard(spec) {
            Some(shard) => view.parse::<View>().and_then(|v| {
                format.parse::<Format>().map(|f| Submit { view: v, format: f, shard: Some(shard) })
            }),
            None => Err(USAGE.into()),
        },
        _ => Err(USAGE.into()),
    };
    Some(parsed)
}

/// The `OK <ncells>` acknowledgement of an accepted submission.
pub fn ok_line(ncells: usize) -> String {
    format!("OK {ncells}")
}

/// One streamed per-cell result line, in strict job-index order:
/// `CELL <index> <benchmark> <point-label> <ipc>`.
pub fn cell_line(job: &SweepJob, result: &RunResult) -> String {
    let label = match &job.point {
        Some(p) => p.label(),
        None => "baseline".to_string(),
    };
    format!("CELL {} {} {} {:.3}", job.index, job.bench.name, label, result.metrics.ipc())
}

/// The `TABLE <nbytes>` header announcing the rendered table payload.
pub fn table_header(nbytes: usize) -> String {
    format!("TABLE {nbytes}")
}

/// One raw per-cell counter frame of a sharded reply:
/// `RESULT <index> <hex(RunResult)>`. The full counters travel so the
/// client can rebuild the exact table — IPC alone would lose coverage
/// and accuracy columns.
pub fn result_line(index: usize, result: &RunResult) -> String {
    let bytes = result.to_bytes();
    let mut hex = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        hex.push_str(&format!("{b:02x}"));
    }
    format!("RESULT {index} {hex}")
}

/// Parse a `RESULT <index> <hex>` frame back into its cell index and
/// counters (`None` if the line is not a RESULT frame at all).
pub fn parse_result(line: &str) -> Option<Result<(usize, RunResult), String>> {
    let rest = line.strip_prefix("RESULT ")?;
    let parsed = (|| {
        let (index, hex) = rest.split_once(' ').ok_or("RESULT takes an index and a payload")?;
        let index: usize = index.parse().map_err(|_| format!("bad RESULT index {index}"))?;
        if hex.len() % 2 != 0 {
            return Err("odd-length RESULT payload".to_string());
        }
        let bytes: Vec<u8> = (0..hex.len() / 2)
            .map(|i| u8::from_str_radix(&hex[2 * i..2 * i + 2], 16))
            .collect::<Result<_, _>>()
            .map_err(|_| "non-hex RESULT payload".to_string())?;
        Ok((index, RunResult::from_bytes(&bytes)?))
    })();
    Some(parsed)
}

/// The `STATS …` diagnostics line of a finished submission.
pub fn stats_line(timing: &SweepTiming) -> String {
    format!(
        "STATS result_cache_hits={} cells_simulated={} trace_store_hits={} trace_store_misses={}",
        timing.result_cache_hits,
        timing.jobs as u64 - timing.result_cache_hits,
        timing.trace_store_hits,
        timing.trace_store_misses,
    )
}

/// [`stats_line`] plus the server-side concurrency diagnostics: how long
/// the job sat admitted-but-unscheduled (`queue_wait_ms`) and its total
/// admission-to-reply wall-clock (`wall_ms`). Appending keeps every
/// existing `STATS` consumer (substring greps included) working.
pub fn stats_line_served(
    timing: &SweepTiming,
    queue_wait: std::time::Duration,
    wall: std::time::Duration,
) -> String {
    format!(
        "{} queue_wait_ms={} wall_ms={}",
        stats_line(timing),
        queue_wait.as_millis(),
        wall.as_millis()
    )
}

/// The `ERR server busy … RETRY-AFTER <ms>` refusal of a server at its
/// admission cap, carrying the suggested back-off.
pub fn busy_line(active_jobs: usize, retry_after_ms: u64) -> String {
    err_line(&format!(
        "server busy: {active_jobs} job(s) in flight, queue full — RETRY-AFTER {retry_after_ms}"
    ))
}

/// Extract the `RETRY-AFTER <ms>` hint from a busy error message, if the
/// message is a busy refusal carrying one.
pub fn parse_retry_after(msg: &str) -> Option<u64> {
    let (_, after) = msg.split_once("RETRY-AFTER ")?;
    after.split_whitespace().next()?.parse().ok()
}

/// An `ERR <msg>` reply: the message is collapsed to one line so it can
/// never break the framing.
pub fn err_line(msg: &str) -> String {
    let one_line: String =
        msg.chars().map(|c| if c == '\n' || c == '\r' { ' ' } else { c }).collect();
    format!("ERR {}", one_line.trim())
}

/// Render a submission's final table exactly as a local `sweep` run
/// prints it to stdout: `to_csv()`/`to_json()` verbatim for those
/// formats, and the aligned text plus the `println!` newline for ascii —
/// so `sweep --remote` output is byte-identical to local output.
pub fn render_output(results: &SweepResults, view: View, format: Format) -> String {
    let table = match view {
        View::Long => results.table(),
        View::Matrix => results.matrix(),
    };
    match format {
        Format::Ascii => format!("{table}\n"),
        Format::Csv => table.to_csv(),
        Format::Json => table.to_json(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_and_format_round_trip() {
        for view in [View::Long, View::Matrix] {
            assert_eq!(view.to_string().parse::<View>().unwrap(), view);
        }
        for format in [Format::Ascii, Format::Csv, Format::Json] {
            assert_eq!(format.to_string().parse::<Format>().unwrap(), format);
        }
        assert!("wide".parse::<View>().is_err());
        assert!("yaml".parse::<Format>().is_err());
    }

    #[test]
    fn submit_lines_parse_back() {
        let line = submit_line(View::Matrix, Format::Csv);
        assert_eq!(line, "SUBMIT matrix csv");
        assert_eq!(
            parse_submit(&line).unwrap().unwrap(),
            Submit { view: View::Matrix, format: Format::Csv, shard: None }
        );
        assert!(parse_submit("PING").is_none());
        assert!(parse_submit("SUBMIT").unwrap().is_err());
        assert!(parse_submit("SUBMIT long").unwrap().is_err());
        assert!(parse_submit("SUBMIT long ascii extra").unwrap().is_err());
        assert!(parse_submit("SUBMIT sideways ascii").unwrap().is_err());
    }

    #[test]
    fn sharded_submit_lines_parse_back_and_reject_bad_shards() {
        let line = submit_line_sharded(View::Long, Format::Ascii, (1, 3));
        assert_eq!(line, "SUBMIT long ascii shard 1/3");
        assert_eq!(
            parse_submit(&line).unwrap().unwrap(),
            Submit { view: View::Long, format: Format::Ascii, shard: Some((1, 3)) }
        );
        // Shard index must stay below the count; zero shards is nonsense.
        assert!(parse_submit("SUBMIT long ascii shard 3/3").unwrap().is_err());
        assert!(parse_submit("SUBMIT long ascii shard 0/0").unwrap().is_err());
        assert!(parse_submit("SUBMIT long ascii shard x/2").unwrap().is_err());
        assert!(parse_submit("SUBMIT long ascii frag 0/2").unwrap().is_err());
    }

    #[test]
    fn result_lines_round_trip_the_full_counters() {
        let spec = crate::scenario::preset("smoke").unwrap().to_spec();
        let settings =
            crate::RunSettings { warmup: 200, measure: 1_000, ..crate::RunSettings::default() };
        let result = settings.run(&spec.benches[0], settings.core());
        let line = result_line(7, &result);
        assert!(line.starts_with("RESULT 7 "), "{line}");
        let (index, back) = parse_result(&line).unwrap().unwrap();
        assert_eq!(index, 7);
        assert_eq!(back, result, "hex round-trip must preserve every counter");
        assert!(parse_result("CELL 0 gzip baseline 1.0").is_none());
        assert!(parse_result("RESULT x ff").unwrap().is_err());
        assert!(parse_result("RESULT 1 f").unwrap().is_err());
        assert!(parse_result("RESULT 1 zz").unwrap().is_err());
    }

    #[test]
    fn err_lines_never_contain_newlines() {
        let err = err_line("line 1: bad key\nline 2: worse");
        assert_eq!(err, "ERR line 1: bad key line 2: worse");
        assert_eq!(err.lines().count(), 1);
    }

    #[test]
    fn stats_line_reports_simulated_complement() {
        let timing = SweepTiming {
            jobs: 10,
            result_cache_hits: 7,
            trace_store_hits: 2,
            trace_store_misses: 1,
            ..SweepTiming::default()
        };
        assert_eq!(
            stats_line(&timing),
            "STATS result_cache_hits=7 cells_simulated=3 trace_store_hits=2 trace_store_misses=1"
        );
        // The served variant appends — never reorders — so substring
        // consumers of the base line keep working.
        let served = stats_line_served(
            &timing,
            std::time::Duration::from_millis(12),
            std::time::Duration::from_millis(345),
        );
        assert!(served.starts_with(&stats_line(&timing)), "{served}");
        assert!(served.ends_with("queue_wait_ms=12 wall_ms=345"), "{served}");
    }

    #[test]
    fn busy_lines_carry_a_parseable_retry_hint() {
        let line = busy_line(3, 250);
        assert!(line.starts_with("ERR server busy"), "{line}");
        assert_eq!(parse_retry_after(line.strip_prefix("ERR ").unwrap()), Some(250));
        assert_eq!(parse_retry_after("some other error"), None);
    }
}
