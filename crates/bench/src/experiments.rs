//! One function per table/figure of the paper.
//!
//! Analytic reproductions (Tables 1–3, the §3.1 model, §4) are exact;
//! simulation-backed reproductions (Figures 3–7, §3.2, §8 accuracy) run
//! the benchmark analogues on the Table 2 core and report the same rows
//! and series the paper plots. Each one resolves its configuration grid
//! through a named [`crate::scenario`] preset (so `sweep --preset fig6`
//! reproduces the same runs) and takes a [`Scenario`] for sizing,
//! workloads and core overrides; `RunSettings::threads` parallelizes the
//! grid without changing a byte of output.

use crate::runner::RunSettings;
use crate::scenario::{self, Scenario};
use crate::sweep::SweepResults;
use crate::trace_cache::TraceCache;
use vpsim_core::{ConfidenceScheme, PredictorKind};
use vpsim_isa::DynInst;
use vpsim_stats::table::{fmt_f, fmt_pct, Table};
use vpsim_stats::{mean, speedup};
use vpsim_uarch::penalty::{PenaltyModel, RecoveryPenalties};
use vpsim_uarch::regfile::vp_port_cost;
use vpsim_uarch::{CoreConfig, RecoveryPolicy};
use vpsim_workloads::{Benchmark, Class, Suite};

/// The four single-scheme predictors of Figures 4 and 5.
pub const SINGLE_SCHEMES: [PredictorKind; 4] = PredictorKind::PAPER_SET;

/// Run `sc` under the grid of the named built-in preset: sizing, workload
/// list and core overrides come from `sc`, the grid axes/points from the
/// preset. This is the single path every simulation-backed experiment
/// resolves its configurations through.
fn preset_results(sc: &Scenario, name: &str) -> SweepResults {
    let grid = scenario::preset(name).expect("built-in preset");
    sc.with_grid_of(&grid).run()
}

/// Table 1: predictor layout summary (entries, tag width, size in KB).
pub fn table1() -> Table {
    let mut t =
        Table::new(vec!["Predictor".into(), "#Entries".into(), "Tag".into(), "Size (KB)".into()]);
    let scheme = ConfidenceScheme::baseline();
    for kind in [
        PredictorKind::Lvp,
        PredictorKind::TwoDeltaStride,
        PredictorKind::Fcm4,
        PredictorKind::Vtage,
    ] {
        let p = kind.build(scheme.clone(), 0);
        for c in p.storage().components() {
            let tag = match (kind, c.name.as_str()) {
                (PredictorKind::Vtage, "VTAGE base") => "-".to_string(),
                (PredictorKind::Vtage, _) => "12+rank".to_string(),
                (PredictorKind::Fcm4, name) if name.contains("VPT") => "-".to_string(),
                _ => "Full (51)".to_string(),
            };
            t.row(vec![
                c.name.clone(),
                c.entries.to_string(),
                tag,
                fmt_f(c.bits() as f64 / 8000.0, 1),
            ]);
        }
    }
    t
}

/// Table 2: simulator configuration overview.
pub fn table2() -> Table {
    let c = CoreConfig::default();
    let mut t = Table::new(vec!["Parameter".into(), "Value".into()]);
    let rows: Vec<(&str, String)> = vec![
        ("Fetch/decode/rename width", format!("{} µops (2 taken branches/cycle)", c.fetch_width)),
        ("Front-end depth", format!("{} cycles", c.frontend_depth)),
        ("Branch prediction", "TAGE 1+12 components (~15K entries), 4K-entry 2-way BTB, 32-entry RAS".into()),
        ("ROB / IQ / LQ / SQ", format!("{} / {} / {} / {}", c.rob_entries, c.iq_entries, c.lq_entries, c.sq_entries)),
        ("Physical registers", format!("{} INT / {} FP", c.int_prf, c.fp_prf)),
        ("Memory dependence", format!("{}-entry SSIT store sets", c.store_set_entries)),
        ("Issue / retire width", format!("{} / {}", c.issue_width, c.retire_width)),
        ("FUs", format!(
            "{} ALU(1c), {} MulDiv({}c/{}c*), {} FP({}c), {} FPMulDiv({}c/{}c*), {} Ld + {} St ports",
            c.fu.alu_units, c.fu.muldiv_units, c.fu.mul_latency, c.fu.div_latency,
            c.fu.fp_units, c.fu.fp_latency, c.fu.fpmuldiv_units, c.fu.fpmul_latency,
            c.fu.fpdiv_latency, c.fu.load_ports, c.fu.store_ports,
        )),
        ("L1I", "4-way 32KB, 64B lines".into()),
        ("L1D", "4-way 32KB, 2 cycles, 64 MSHRs, 4 load ports".into()),
        ("L2", "16-way 2MB, 12 cycles, stride prefetcher degree 8 distance 1".into()),
        ("Memory", "DDR3-1600 11-11-11 model: min 75 / max 185 cycles".into()),
    ];
    for (k, v) in rows {
        t.row(vec![k.into(), v]);
    }
    t
}

/// Table 3: the benchmark suite.
pub fn table3(benches: &[Benchmark]) -> Table {
    let mut t = Table::new(vec!["Program".into(), "Suite".into(), "Class".into()]);
    for b in benches {
        t.row(vec![
            b.name.into(),
            match b.suite {
                Suite::Cpu2000 => "CPU2000".into(),
                Suite::Cpu2006 => "CPU2006".into(),
                Suite::Micro => "micro".into(),
            },
            match b.class {
                Class::Int => "INT".into(),
                Class::Fp => "FP".into(),
            },
        ]);
    }
    t
}

/// §3.1's synthetic example: net cycles per Kinst for the two
/// coverage/accuracy scenarios under the three recovery schemes.
pub fn sec3_model() -> Table {
    let m = PenaltyModel::default();
    let p = RecoveryPenalties::default();
    let mut t = Table::new(vec![
        "Scenario".into(),
        "Reissue (5c)".into(),
        "Squash@exec (20c)".into(),
        "Squash@commit (40c)".into(),
    ]);
    for (label, cov, acc) in [
        ("40% coverage, 95% accuracy", 0.40, 0.95),
        ("30% coverage, 99.75% accuracy", 0.30, 0.9975),
    ] {
        let [a, b, c] = m.scenario(cov, acc, &p);
        t.row(vec![label.into(), fmt_f(a, 0), fmt_f(b, 0), fmt_f(c, 0)]);
    }
    t
}

/// §4: register file port-cost model.
pub fn sec4_regfile() -> Table {
    let c = vp_port_cost(8);
    let mut t =
        Table::new(vec!["Configuration".into(), "Area (W² units)".into(), "Overhead".into()]);
    t.row(vec!["R=2W baseline (12W²)".into(), fmt_f(c.baseline / 64.0, 1), "-".into()]);
    t.row(vec![
        "+W write ports, naive (24W²)".into(),
        fmt_f(c.naive_vp / 64.0, 1),
        fmt_pct(c.naive_overhead(), 0),
    ]);
    t.row(vec![
        "+W/2 buffered ports (17.5W²)".into(),
        fmt_f(c.buffered_vp / 64.0, 1),
        fmt_pct(c.buffered_overhead(), 0),
    ]);
    t
}

/// §3.2: fraction of VP-eligible µops fetched back-to-back, per benchmark.
pub fn sec3_backtoback(sc: &Scenario) -> Table {
    let mut t = Table::new(vec!["Benchmark".into(), "B2B eligible".into()]);
    let mut fracs = Vec::new();
    let base = preset_results(sc, "backtoback").baseline;
    for (name, r) in &base.rows {
        let f = r.back_to_back.fraction();
        fracs.push(f);
        t.row(vec![(*name).into(), fmt_pct(f, 1)]);
    }
    if let Some(a) = mean::arithmetic(&fracs) {
        t.row(vec!["a-mean".into(), fmt_pct(a, 1)]);
    }
    if let Some(&max) = fracs.iter().max_by(|a, b| a.partial_cmp(b).unwrap()).as_ref() {
        t.row(vec!["max".into(), fmt_pct(*max, 1)]);
    }
    t
}

/// Figure 3: speedup upper bound with an oracle predictor.
pub fn fig3(sc: &Scenario) -> Table {
    let results = preset_results(sc, "fig3");
    let base = &results.baseline;
    let oracle = &results.points[0].1;
    let mut t = Table::new(vec!["Benchmark".into(), "Oracle speedup".into()]);
    let speedups = oracle.speedups(base);
    for ((name, _), sp) in oracle.rows.iter().zip(&speedups) {
        t.row(vec![(*name).into(), fmt_f(*sp, 2)]);
    }
    t.row(vec!["g-mean".into(), fmt_f(mean::geometric(&speedups).unwrap_or(1.0), 2)]);
    t
}

/// Shared engine for Figures 4 and 5: speedups of the four single-scheme
/// predictors under a given recovery policy, with baseline 3-bit counters
/// ("(a)") or FPC ("(b)") — presets `fig4a`/`fig4b`/`fig5a`/`fig5b`.
pub fn fig45(sc: &Scenario, recovery: RecoveryPolicy, fpc: bool) -> Table {
    let name = match (recovery, fpc) {
        (RecoveryPolicy::SquashAtCommit, false) => "fig4a",
        (RecoveryPolicy::SquashAtCommit, true) => "fig4b",
        (RecoveryPolicy::SelectiveReissue, false) => "fig5a",
        (RecoveryPolicy::SelectiveReissue, true) => "fig5b",
    };
    let results = preset_results(sc, name);
    let base = &results.baseline;
    let mut headers = vec!["Benchmark".into()];
    headers.extend(results.points.iter().map(|(p, _)| p.kind.label().to_string()));
    let mut t = Table::new(headers);
    let per_kind: Vec<Vec<f64>> =
        results.points.iter().map(|(_, suite)| suite.speedups(base)).collect();
    for (i, b) in sc.benches.iter().enumerate() {
        let mut row = vec![b.name.to_string()];
        for col in &per_kind {
            row.push(fmt_f(col[i], 3));
        }
        t.row(row);
    }
    let mut grow = vec!["g-mean".to_string()];
    for col in &per_kind {
        grow.push(fmt_f(mean::geometric(col).unwrap_or(1.0), 3));
    }
    t.row(grow);
    t
}

/// Figure 6: VTAGE speedup and coverage, baseline counters vs FPC
/// (squash-at-commit recovery) — preset `fig6`.
pub fn fig6(sc: &Scenario) -> Table {
    let results = preset_results(sc, "fig6");
    let base = &results.baseline;
    let baseline_cnt = &results.points[0].1;
    let fpc = &results.points[1].1;
    let sp_b = baseline_cnt.speedups(base);
    let sp_f = fpc.speedups(base);
    let mut t = Table::new(vec![
        "Benchmark".into(),
        "Speedup base".into(),
        "Speedup FPC".into(),
        "Coverage base".into(),
        "Coverage FPC".into(),
        "Accuracy base".into(),
        "Accuracy FPC".into(),
    ]);
    for (i, b) in sc.benches.iter().enumerate() {
        t.row(vec![
            b.name.into(),
            fmt_f(sp_b[i], 3),
            fmt_f(sp_f[i], 3),
            fmt_pct(baseline_cnt.rows[i].1.vp.coverage(), 1),
            fmt_pct(fpc.rows[i].1.vp.coverage(), 1),
            fmt_pct(baseline_cnt.rows[i].1.vp.accuracy(), 2),
            fmt_pct(fpc.rows[i].1.vp.accuracy(), 2),
        ]);
    }
    t.row(vec![
        "g-mean".into(),
        fmt_f(mean::geometric(&sp_b).unwrap_or(1.0), 3),
        fmt_f(mean::geometric(&sp_f).unwrap_or(1.0), 3),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
    ]);
    t
}

/// Figure 7: the two symmetric hybrids vs their components (FPC,
/// squash-at-commit): speedup and coverage — preset `fig7`.
pub fn fig7(sc: &Scenario) -> Table {
    let results = preset_results(sc, "fig7");
    let base = &results.baseline;
    let mut headers = vec!["Benchmark".into()];
    for (p, _) in &results.points {
        headers.push(format!("{} spd", p.kind.label()));
    }
    for (p, _) in &results.points {
        headers.push(format!("{} cov", p.kind.label()));
    }
    let mut t = Table::new(headers);
    let speedups: Vec<Vec<f64>> =
        results.points.iter().map(|(_, suite)| suite.speedups(base)).collect();
    for (i, b) in sc.benches.iter().enumerate() {
        let mut row = vec![b.name.to_string()];
        for sp in &speedups {
            row.push(fmt_f(sp[i], 3));
        }
        for (_, suite) in &results.points {
            row.push(fmt_pct(suite.rows[i].1.vp.coverage(), 1));
        }
        t.row(row);
    }
    let mut grow = vec!["g-mean".to_string()];
    for sp in &speedups {
        grow.push(fmt_f(mean::geometric(sp).unwrap_or(1.0), 3));
    }
    t.row(grow);
    t
}

/// §8.2.1/§8.2.2: per-predictor accuracy under baseline counters vs FPC
/// (squash-at-commit) — preset `accuracy` (kind-major, baseline before
/// FPC).
pub fn accuracy(sc: &Scenario) -> Table {
    use crate::sweep::SchemeChoice;
    let results = preset_results(sc, "accuracy");
    // One column per grid point, headers derived from the points so the
    // preset stays free to evolve ("base" keeps the paper's shorthand for
    // the baseline counters).
    let mut headers = vec!["Benchmark".into()];
    for (p, _) in &results.points {
        let scheme = match p.scheme {
            SchemeChoice::Baseline => "base".into(),
            SchemeChoice::Fpc => "FPC".into(),
            other => other.label(),
        };
        headers.push(format!("{} {scheme}", p.kind.label()));
    }
    let mut t = Table::new(headers);
    for (i, b) in sc.benches.iter().enumerate() {
        let mut row = vec![b.name.to_string()];
        for (_, suite) in &results.points {
            row.push(fmt_pct(suite.rows[i].1.vp.accuracy(), 2));
        }
        t.row(row);
    }
    t
}

/// Compare squash-at-commit against idealistic selective reissue under FPC
/// for VTAGE — the §8.2.4 "recovery mechanism has little impact" claim,
/// distilled — preset `recovery`.
pub fn recovery_comparison(sc: &Scenario) -> Table {
    let results = preset_results(sc, "recovery");
    let base = &results.baseline;
    let squash = &results.points[0].1;
    let reissue = &results.points[1].1;
    let sp_s = squash.speedups(base);
    let sp_r = reissue.speedups(base);
    let mut t = Table::new(vec![
        "Benchmark".into(),
        "Squash@commit".into(),
        "Selective reissue".into(),
        "Delta".into(),
    ]);
    for (i, b) in sc.benches.iter().enumerate() {
        t.row(vec![
            b.name.into(),
            fmt_f(sp_s[i], 3),
            fmt_f(sp_r[i], 3),
            fmt_f(sp_r[i] - sp_s[i], 3),
        ]);
    }
    t.row(vec![
        "g-mean".into(),
        fmt_f(mean::geometric(&sp_s).unwrap_or(1.0), 3),
        fmt_f(mean::geometric(&sp_r).unwrap_or(1.0), 3),
        String::new(),
    ]);
    t
}

/// The first `n` dynamic µops of `bench` for an offline experiment,
/// handed to `f` as a polymorphic stream: replayed from the shared
/// [`TraceCache`] when the scenario's `trace_cache` is on, or executed
/// functionally inline otherwise. Both paths yield the identical stream
/// (the trace layer's core guarantee), so experiment output is
/// byte-identical either way.
fn with_offline_stream<R>(
    sc: &Scenario,
    bench: &Benchmark,
    n: u64,
    f: impl FnOnce(&mut dyn Iterator<Item = DynInst>) -> R,
) -> R {
    let s = &sc.settings;
    if s.trace_cache {
        let (trace, _) = TraceCache::global().get(s, bench, n);
        f(&mut trace.cursor().take(n as usize))
    } else {
        let program = (bench.build)(&s.params());
        f(&mut vpsim_isa::Executor::new(&program).take(n as usize))
    }
}

/// Offline predictor evaluation: stream a benchmark's dynamic trace
/// (from the inline [`Executor`](vpsim_isa::Executor) or a replayed
/// [`Trace`](vpsim_isa::Trace) cursor — any [`DynInst`] iterator) through
/// a predictor (in-order predict → train, with the correct-path branch
/// history — identical to what the pipeline's front-end sees) and report
/// coverage/accuracy over eligible µops.
pub fn offline_eval(
    predictor: &mut dyn vpsim_core::Predictor,
    stream: impl Iterator<Item = DynInst>,
) -> (f64, f64) {
    use vpsim_core::{HistoryState, PredictCtx};
    let mut hist = HistoryState::default();
    let (mut eligible, mut used, mut correct) = (0u64, 0u64, 0u64);
    for di in stream {
        if di.vp_eligible() {
            eligible += 1;
            let ctx = PredictCtx { seq: di.seq, pc: di.pc, hist, actual: None };
            let actual = di.result.expect("eligible µop has a result");
            if let Some(guess) = predictor.predict(&ctx).confident_value() {
                used += 1;
                if guess == actual {
                    correct += 1;
                }
            }
            predictor.train(di.seq, actual);
        }
        let op = di.inst.op;
        if op.is_cond_branch() {
            hist.push_branch(di.pc, di.taken);
        } else if op.is_control() {
            hist.push_path(di.pc);
        }
    }
    let coverage = if eligible == 0 { 0.0 } else { used as f64 / eligible as f64 };
    let accuracy = if used == 0 { 1.0 } else { correct as f64 / used as f64 };
    (coverage, accuracy)
}

/// Ablation: VTAGE tagged-component count (offline evaluation — the
/// geometry sweep isolates the predictor from pipeline effects). Shows
/// how much of VTAGE's coverage the longer histories contribute.
pub fn ablation_vtage(sc: &Scenario) -> Table {
    use vpsim_core::{Predictor as _, Vtage, VtageConfig};
    let s = &sc.settings;
    let geometries: Vec<(String, Vec<u32>)> = vec![
        ("1 comp (2)".into(), vec![2]),
        ("2 comps (2,4)".into(), vec![2, 4]),
        ("4 comps (2..16)".into(), vec![2, 4, 8, 16]),
        ("6 comps (2..64), paper".into(), vec![2, 4, 8, 16, 32, 64]),
        ("8 comps (2..128)".into(), vec![2, 4, 8, 16, 32, 64, 96, 128]),
    ];
    let mut t = Table::new(vec![
        "Geometry".into(),
        "Coverage (a-mean)".into(),
        "Accuracy (a-mean)".into(),
        "Size (KB)".into(),
    ]);
    let instructions = s.warmup + s.measure;
    for (label, lengths) in geometries {
        let config = VtageConfig { history_lengths: lengths, ..VtageConfig::default() };
        let size_kb =
            Vtage::new(config.clone(), ConfidenceScheme::fpc_squash(), 0).storage().total_kb();
        let mut covs = Vec::new();
        let mut accs = Vec::new();
        for b in &sc.benches {
            let mut p = Vtage::new(config.clone(), ConfidenceScheme::fpc_squash(), s.seed);
            let (cov, acc) =
                with_offline_stream(sc, b, instructions, |stream| offline_eval(&mut p, stream));
            covs.push(cov);
            accs.push(acc);
        }
        t.row(vec![
            label,
            fmt_pct(mean::arithmetic(&covs).unwrap_or(0.0), 1),
            fmt_pct(mean::arithmetic(&accs).unwrap_or(0.0), 2),
            fmt_f(size_kb, 1),
        ]);
    }
    t
}

/// Ablation: extended predictor set (per-path stride, D-FCM, gDiff over
/// VTAGE) against the paper's headline hybrid — the paper's future-work
/// section, made concrete — preset `ablation-extended`.
pub fn ablation_extended(sc: &Scenario) -> Table {
    let results = preset_results(sc, "ablation-extended");
    let base = &results.baseline;
    let mut headers = vec!["Benchmark".into()];
    headers.extend(results.points.iter().map(|(p, _)| p.kind.label().to_string()));
    let mut t = Table::new(headers);
    let speedups: Vec<Vec<f64>> =
        results.points.iter().map(|(_, suite)| suite.speedups(base)).collect();
    for (i, b) in sc.benches.iter().enumerate() {
        let mut row = vec![b.name.to_string()];
        for sp in &speedups {
            row.push(fmt_f(sp[i], 3));
        }
        t.row(row);
    }
    let mut grow = vec!["g-mean".to_string()];
    for sp in &speedups {
        grow.push(fmt_f(mean::geometric(sp).unwrap_or(1.0), 3));
    }
    t.row(grow);
    t
}

/// §5 ablation: counter width vs FPC. The paper notes that "simply using
/// wider counters (e.g. 6 or 7 bits) leads to much more accurate
/// predictors" and that 3-bit FPC matches them at a fraction of the
/// storage; this experiment runs VTAGE under 3/6/7-bit full counters and
/// both FPC vectors (squash-at-commit recovery).
pub fn counters(sc: &Scenario) -> Table {
    use crate::sweep::{GridPoint, SchemeChoice};
    // Row label and bits-per-entry column, derived from the grid point
    // itself so the preset stays free to evolve. SAg carries its own
    // pattern table, hence the odd bits-per-entry entry.
    fn row_meta(p: &GridPoint) -> (String, String) {
        if p.kind == PredictorKind::SagLvp {
            return ("SAg-LVP (Burtscher)".into(), "8+4".into());
        }
        let (scheme, bits) = match p.scheme {
            SchemeChoice::Baseline => ("3-bit full".into(), "3".into()),
            SchemeChoice::Full(b) => (format!("{b}-bit full"), b.to_string()),
            SchemeChoice::FpcVector(v)
                if ConfidenceScheme::fpc(v) == ConfidenceScheme::fpc_squash() =>
            {
                ("FPC squash".into(), "3".into())
            }
            SchemeChoice::FpcVector(v)
                if ConfidenceScheme::fpc(v) == ConfidenceScheme::fpc_reissue() =>
            {
                ("FPC reissue".into(), "3".into())
            }
            SchemeChoice::FpcVector(v) => (ConfidenceScheme::fpc(v).to_string(), "3".into()),
            SchemeChoice::Fpc => (format!("FPC {}", p.recovery), "3".into()),
        };
        (format!("{}, {scheme}", p.kind.label()), bits)
    }
    let results = preset_results(sc, "counters");
    let base = &results.baseline;
    let mut t = Table::new(vec![
        "Configuration".into(),
        "g-mean speedup".into(),
        "Worst case".into(),
        "Accuracy (a-mean)".into(),
        "Conf bits/entry".into(),
    ]);
    for (point, res) in &results.points {
        let (label, bits) = row_meta(point);
        let speedups = res.speedups(base);
        let worst = speedups.iter().cloned().fold(f64::INFINITY, f64::min);
        let accs: Vec<f64> =
            res.rows.iter().filter(|(_, r)| r.vp.used > 0).map(|(_, r)| r.vp.accuracy()).collect();
        t.row(vec![
            label,
            fmt_f(mean::geometric(&speedups).unwrap_or(1.0), 3),
            fmt_f(worst, 3),
            fmt_pct(mean::arithmetic(&accs).unwrap_or(0.0), 2),
            bits,
        ]);
    }
    t
}

/// Value-locality breakdown per benchmark (offline): the dynamic-weighted
/// mix of constant / strided / patterned / chaotic value streams — the
/// workload-side explanation of which predictor family wins where.
pub fn locality(sc: &Scenario) -> Table {
    use vpsim_core::locality::{LocalityAnalyzer, ValueClass};
    let s = &sc.settings;
    let mut t = Table::new(vec![
        "Benchmark".into(),
        "Constant".into(),
        "Strided".into(),
        "Patterned".into(),
        "Chaotic".into(),
    ]);
    let instructions = s.warmup + s.measure;
    for b in &sc.benches {
        let mut a = LocalityAnalyzer::new();
        with_offline_stream(sc, b, instructions, |stream| {
            for di in stream {
                if di.vp_eligible() {
                    a.observe(di.pc, di.result.expect("eligible µop has a result"));
                }
            }
        });
        let r = a.report();
        t.row(vec![
            b.name.into(),
            fmt_pct(r.fraction(ValueClass::Constant), 1),
            fmt_pct(r.fraction(ValueClass::Strided), 1),
            fmt_pct(r.fraction(ValueClass::Patterned), 1),
            fmt_pct(r.fraction(ValueClass::Chaotic), 1),
        ]);
    }
    t
}

/// Diagnostic table: per-benchmark baseline IPC and substrate statistics
/// (branch MPKI, cache MPKI, back-to-back fraction) plus the oracle IPC.
/// Not a paper figure — used to sanity-check workload character — preset
/// `ipc`.
pub fn ipc_diagnostics(sc: &Scenario) -> Table {
    let mut t = Table::new(vec![
        "Benchmark".into(),
        "IPC".into(),
        "Oracle IPC".into(),
        "Br MPKI".into(),
        "L1D MPKI".into(),
        "L2 MPKI".into(),
        "B2B".into(),
    ]);
    let results = preset_results(sc, "ipc");
    let bases = &results.baseline;
    let oracles = &results.points[0].1;
    for ((name, base), (_, oracle)) in bases.rows.iter().zip(&oracles.rows) {
        let n = base.metrics.instructions;
        t.row(vec![
            (*name).into(),
            fmt_f(base.metrics.ipc(), 2),
            fmt_f(oracle.metrics.ipc(), 2),
            fmt_f(base.branch.mpki(n), 1),
            fmt_f(base.l1d.mpki(n), 1),
            fmt_f(base.l2.mpki(n), 1),
            fmt_pct(base.back_to_back.fraction(), 1),
        ]);
    }
    t
}

/// A single-benchmark speedup, used by tests.
pub fn one_speedup(
    s: &RunSettings,
    bench: &Benchmark,
    kind: PredictorKind,
    scheme: ConfidenceScheme,
    recovery: RecoveryPolicy,
) -> f64 {
    let base = s.run_baseline(bench);
    let vp = s.run_vp(bench, kind, scheme, recovery);
    speedup(&base.metrics, &vp.metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpsim_workloads::all_benchmarks;

    #[test]
    fn table1_reproduces_paper_sizes() {
        let t = table1();
        let csv = t.to_csv();
        // The paper's headline sizes, to one decimal.
        for needle in ["120.8", "251.9", "67.6", "68.6"] {
            assert!(csv.contains(needle), "missing {needle} in\n{csv}");
        }
        // VTAGE tagged components: 6 rows of 1024 entries.
        assert_eq!(csv.matches("1024").count(), 6, "{csv}");
    }

    #[test]
    fn table2_mentions_key_parameters() {
        let csv = table2().to_csv();
        for needle in ["256 / 128 / 48 / 48", "TAGE", "DDR3-1600", "15 cycles"] {
            assert!(csv.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn table3_lists_19_benchmarks() {
        let t = table3(&all_benchmarks());
        assert_eq!(t.len(), 19);
    }

    #[test]
    fn sec3_model_matches_paper_numbers() {
        // The paper quotes scenario 2 as ≈88/83/76; the exact formula
        // yields 87.9/82.3/74.8, printed as 88/82/75.
        let csv = sec3_model().to_csv();
        for needle in ["64", "-86", "-286", "88", "82", "75"] {
            assert!(csv.contains(needle), "missing {needle} in\n{csv}");
        }
    }

    #[test]
    fn sec4_regfile_shows_halved_overhead() {
        let csv = sec4_regfile().to_csv();
        assert!(csv.contains("100%"), "{csv}");
        assert!(csv.contains("46%"), "{csv}");
    }
}
