//! One function per table/figure of the paper.
//!
//! Analytic reproductions (Tables 1–3, the §3.1 model, §4) are exact;
//! simulation-backed reproductions (Figures 3–7, §3.2, §8 accuracy) run
//! the benchmark analogues on the Table 2 core and report the same rows
//! and series the paper plots. Every simulation-backed experiment batches
//! its full configuration grid through [`crate::sweep::run_grid`], so
//! `RunSettings::threads` parallelizes it without changing a byte of
//! output.

use crate::runner::{sweep, RunSettings};
use crate::sweep::run_grid;
use vpsim_core::{ConfidenceScheme, PredictorKind};
use vpsim_stats::table::{fmt_f, fmt_pct, Table};
use vpsim_stats::{mean, speedup};
use vpsim_uarch::penalty::{PenaltyModel, RecoveryPenalties};
use vpsim_uarch::regfile::vp_port_cost;
use vpsim_uarch::{CoreConfig, RecoveryPolicy, VpConfig};
use vpsim_workloads::{Benchmark, Class, Suite};

/// The four single-scheme predictors of Figures 4 and 5.
pub const SINGLE_SCHEMES: [PredictorKind; 4] = PredictorKind::PAPER_SET;

/// Table 1: predictor layout summary (entries, tag width, size in KB).
pub fn table1() -> Table {
    let mut t =
        Table::new(vec!["Predictor".into(), "#Entries".into(), "Tag".into(), "Size (KB)".into()]);
    let scheme = ConfidenceScheme::baseline();
    for kind in [
        PredictorKind::Lvp,
        PredictorKind::TwoDeltaStride,
        PredictorKind::Fcm4,
        PredictorKind::Vtage,
    ] {
        let p = kind.build(scheme.clone(), 0);
        for c in p.storage().components() {
            let tag = match (kind, c.name.as_str()) {
                (PredictorKind::Vtage, "VTAGE base") => "-".to_string(),
                (PredictorKind::Vtage, _) => "12+rank".to_string(),
                (PredictorKind::Fcm4, name) if name.contains("VPT") => "-".to_string(),
                _ => "Full (51)".to_string(),
            };
            t.row(vec![
                c.name.clone(),
                c.entries.to_string(),
                tag,
                fmt_f(c.bits() as f64 / 8000.0, 1),
            ]);
        }
    }
    t
}

/// Table 2: simulator configuration overview.
pub fn table2() -> Table {
    let c = CoreConfig::default();
    let mut t = Table::new(vec!["Parameter".into(), "Value".into()]);
    let rows: Vec<(&str, String)> = vec![
        ("Fetch/decode/rename width", format!("{} µops (2 taken branches/cycle)", c.fetch_width)),
        ("Front-end depth", format!("{} cycles", c.frontend_depth)),
        ("Branch prediction", "TAGE 1+12 components (~15K entries), 4K-entry 2-way BTB, 32-entry RAS".into()),
        ("ROB / IQ / LQ / SQ", format!("{} / {} / {} / {}", c.rob_entries, c.iq_entries, c.lq_entries, c.sq_entries)),
        ("Physical registers", format!("{} INT / {} FP", c.int_prf, c.fp_prf)),
        ("Memory dependence", format!("{}-entry SSIT store sets", c.store_set_entries)),
        ("Issue / retire width", format!("{} / {}", c.issue_width, c.retire_width)),
        ("FUs", format!(
            "{} ALU(1c), {} MulDiv({}c/{}c*), {} FP({}c), {} FPMulDiv({}c/{}c*), {} Ld + {} St ports",
            c.fu.alu_units, c.fu.muldiv_units, c.fu.mul_latency, c.fu.div_latency,
            c.fu.fp_units, c.fu.fp_latency, c.fu.fpmuldiv_units, c.fu.fpmul_latency,
            c.fu.fpdiv_latency, c.fu.load_ports, c.fu.store_ports,
        )),
        ("L1I", "4-way 32KB, 64B lines".into()),
        ("L1D", "4-way 32KB, 2 cycles, 64 MSHRs, 4 load ports".into()),
        ("L2", "16-way 2MB, 12 cycles, stride prefetcher degree 8 distance 1".into()),
        ("Memory", "DDR3-1600 11-11-11 model: min 75 / max 185 cycles".into()),
    ];
    for (k, v) in rows {
        t.row(vec![k.into(), v]);
    }
    t
}

/// Table 3: the benchmark suite.
pub fn table3(benches: &[Benchmark]) -> Table {
    let mut t = Table::new(vec!["Program".into(), "Suite".into(), "Class".into()]);
    for b in benches {
        t.row(vec![
            b.name.into(),
            match b.suite {
                Suite::Cpu2000 => "CPU2000".into(),
                Suite::Cpu2006 => "CPU2006".into(),
            },
            match b.class {
                Class::Int => "INT".into(),
                Class::Fp => "FP".into(),
            },
        ]);
    }
    t
}

/// §3.1's synthetic example: net cycles per Kinst for the two
/// coverage/accuracy scenarios under the three recovery schemes.
pub fn sec3_model() -> Table {
    let m = PenaltyModel::default();
    let p = RecoveryPenalties::default();
    let mut t = Table::new(vec![
        "Scenario".into(),
        "Reissue (5c)".into(),
        "Squash@exec (20c)".into(),
        "Squash@commit (40c)".into(),
    ]);
    for (label, cov, acc) in [
        ("40% coverage, 95% accuracy", 0.40, 0.95),
        ("30% coverage, 99.75% accuracy", 0.30, 0.9975),
    ] {
        let [a, b, c] = m.scenario(cov, acc, &p);
        t.row(vec![label.into(), fmt_f(a, 0), fmt_f(b, 0), fmt_f(c, 0)]);
    }
    t
}

/// §4: register file port-cost model.
pub fn sec4_regfile() -> Table {
    let c = vp_port_cost(8);
    let mut t =
        Table::new(vec!["Configuration".into(), "Area (W² units)".into(), "Overhead".into()]);
    t.row(vec!["R=2W baseline (12W²)".into(), fmt_f(c.baseline / 64.0, 1), "-".into()]);
    t.row(vec![
        "+W write ports, naive (24W²)".into(),
        fmt_f(c.naive_vp / 64.0, 1),
        fmt_pct(c.naive_overhead(), 0),
    ]);
    t.row(vec![
        "+W/2 buffered ports (17.5W²)".into(),
        fmt_f(c.buffered_vp / 64.0, 1),
        fmt_pct(c.buffered_overhead(), 0),
    ]);
    t
}

/// §3.2: fraction of VP-eligible µops fetched back-to-back, per benchmark.
pub fn sec3_backtoback(s: &RunSettings, benches: &[Benchmark]) -> Table {
    let mut t = Table::new(vec!["Benchmark".into(), "B2B eligible".into()]);
    let mut fracs = Vec::new();
    let base = sweep(s, benches, || s.core());
    for (name, r) in &base.rows {
        let f = r.back_to_back.fraction();
        fracs.push(f);
        t.row(vec![(*name).into(), fmt_pct(f, 1)]);
    }
    if let Some(a) = mean::arithmetic(&fracs) {
        t.row(vec!["a-mean".into(), fmt_pct(a, 1)]);
    }
    if let Some(&max) = fracs.iter().max_by(|a, b| a.partial_cmp(b).unwrap()).as_ref() {
        t.row(vec!["max".into(), fmt_pct(*max, 1)]);
    }
    t
}

/// Figure 3: speedup upper bound with an oracle predictor.
pub fn fig3(s: &RunSettings, benches: &[Benchmark]) -> Table {
    let oracle_cfg =
        s.core().with_vp(VpConfig::enabled(PredictorKind::Oracle, RecoveryPolicy::SquashAtCommit));
    let mut suites = run_grid(s, benches, &[s.core(), oracle_cfg]);
    let oracle = suites.pop().expect("two configs in");
    let base = suites.pop().expect("two configs in");
    let mut t = Table::new(vec!["Benchmark".into(), "Oracle speedup".into()]);
    let speedups = oracle.speedups(&base);
    for ((name, _), sp) in oracle.rows.iter().zip(&speedups) {
        t.row(vec![(*name).into(), fmt_f(*sp, 2)]);
    }
    t.row(vec!["g-mean".into(), fmt_f(mean::geometric(&speedups).unwrap_or(1.0), 2)]);
    t
}

/// Shared engine for Figures 4 and 5: speedups of the four single-scheme
/// predictors under a given recovery policy, with baseline 3-bit counters
/// ("(a)") or FPC ("(b)").
pub fn fig45(s: &RunSettings, benches: &[Benchmark], recovery: RecoveryPolicy, fpc: bool) -> Table {
    let scheme = match (fpc, recovery) {
        (false, _) => ConfidenceScheme::baseline(),
        (true, RecoveryPolicy::SquashAtCommit) => ConfidenceScheme::fpc_squash(),
        (true, RecoveryPolicy::SelectiveReissue) => ConfidenceScheme::fpc_reissue(),
    };
    let mut configs = vec![s.core()];
    configs.extend(
        SINGLE_SCHEMES
            .iter()
            .map(|&kind| s.core().with_vp(VpConfig { kind, scheme: scheme.clone(), recovery })),
    );
    let mut results = run_grid(s, benches, &configs);
    let base = results.remove(0);
    let mut headers = vec!["Benchmark".into()];
    headers.extend(SINGLE_SCHEMES.iter().map(|k| k.label().to_string()));
    let mut t = Table::new(headers);
    let per_kind: Vec<Vec<f64>> = results.iter().map(|r| r.speedups(&base)).collect();
    for (i, b) in benches.iter().enumerate() {
        let mut row = vec![b.name.to_string()];
        for col in &per_kind {
            row.push(fmt_f(col[i], 3));
        }
        t.row(row);
    }
    let mut grow = vec!["g-mean".to_string()];
    for col in &per_kind {
        grow.push(fmt_f(mean::geometric(col).unwrap_or(1.0), 3));
    }
    t.row(grow);
    t
}

/// Figure 6: VTAGE speedup and coverage, baseline counters vs FPC
/// (squash-at-commit recovery).
pub fn fig6(s: &RunSettings, benches: &[Benchmark]) -> Table {
    let mk = |scheme: ConfidenceScheme| {
        s.core().with_vp(VpConfig {
            kind: PredictorKind::Vtage,
            scheme,
            recovery: RecoveryPolicy::SquashAtCommit,
        })
    };
    let configs = [s.core(), mk(ConfidenceScheme::baseline()), mk(ConfidenceScheme::fpc_squash())];
    let mut results = run_grid(s, benches, &configs);
    let fpc = results.pop().expect("three configs in");
    let baseline_cnt = results.pop().expect("three configs in");
    let base = results.pop().expect("three configs in");
    let sp_b = baseline_cnt.speedups(&base);
    let sp_f = fpc.speedups(&base);
    let mut t = Table::new(vec![
        "Benchmark".into(),
        "Speedup base".into(),
        "Speedup FPC".into(),
        "Coverage base".into(),
        "Coverage FPC".into(),
        "Accuracy base".into(),
        "Accuracy FPC".into(),
    ]);
    for (i, b) in benches.iter().enumerate() {
        t.row(vec![
            b.name.into(),
            fmt_f(sp_b[i], 3),
            fmt_f(sp_f[i], 3),
            fmt_pct(baseline_cnt.rows[i].1.vp.coverage(), 1),
            fmt_pct(fpc.rows[i].1.vp.coverage(), 1),
            fmt_pct(baseline_cnt.rows[i].1.vp.accuracy(), 2),
            fmt_pct(fpc.rows[i].1.vp.accuracy(), 2),
        ]);
    }
    t.row(vec![
        "g-mean".into(),
        fmt_f(mean::geometric(&sp_b).unwrap_or(1.0), 3),
        fmt_f(mean::geometric(&sp_f).unwrap_or(1.0), 3),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
    ]);
    t
}

/// Figure 7: the two symmetric hybrids vs their components (FPC,
/// squash-at-commit): speedup and coverage.
pub fn fig7(s: &RunSettings, benches: &[Benchmark]) -> Table {
    let kinds = [
        PredictorKind::TwoDeltaStride,
        PredictorKind::Fcm4,
        PredictorKind::Vtage,
        PredictorKind::FcmStride,
        PredictorKind::VtageStride,
    ];
    let mut configs = vec![s.core()];
    configs.extend(kinds.iter().map(|&kind| {
        s.core().with_vp(VpConfig {
            kind,
            scheme: ConfidenceScheme::fpc_squash(),
            recovery: RecoveryPolicy::SquashAtCommit,
        })
    }));
    let mut results = run_grid(s, benches, &configs);
    let base = results.remove(0);
    let mut headers = vec!["Benchmark".into()];
    for k in kinds {
        headers.push(format!("{} spd", k.label()));
    }
    for k in kinds {
        headers.push(format!("{} cov", k.label()));
    }
    let mut t = Table::new(headers);
    let speedups: Vec<Vec<f64>> = results.iter().map(|r| r.speedups(&base)).collect();
    for (i, b) in benches.iter().enumerate() {
        let mut row = vec![b.name.to_string()];
        for sp in &speedups {
            row.push(fmt_f(sp[i], 3));
        }
        for r in &results {
            row.push(fmt_pct(r.rows[i].1.vp.coverage(), 1));
        }
        t.row(row);
    }
    let mut grow = vec!["g-mean".to_string()];
    for sp in &speedups {
        grow.push(fmt_f(mean::geometric(sp).unwrap_or(1.0), 3));
    }
    t.row(grow);
    t
}

/// §8.2.1/§8.2.2: per-predictor accuracy under baseline counters vs FPC
/// (squash-at-commit).
pub fn accuracy(s: &RunSettings, benches: &[Benchmark]) -> Table {
    let mut headers = vec!["Benchmark".into()];
    for k in SINGLE_SCHEMES {
        headers.push(format!("{} base", k.label()));
        headers.push(format!("{} FPC", k.label()));
    }
    let mut t = Table::new(headers);
    let mut configs = Vec::new();
    for kind in SINGLE_SCHEMES {
        for scheme in [ConfidenceScheme::baseline(), ConfidenceScheme::fpc_squash()] {
            configs.push(s.core().with_vp(VpConfig {
                kind,
                scheme,
                recovery: RecoveryPolicy::SquashAtCommit,
            }));
        }
    }
    let results = run_grid(s, benches, &configs);
    for (i, b) in benches.iter().enumerate() {
        let mut row = vec![b.name.to_string()];
        for r in &results {
            row.push(fmt_pct(r.rows[i].1.vp.accuracy(), 2));
        }
        t.row(row);
    }
    t
}

/// Compare squash-at-commit against idealistic selective reissue under FPC
/// for one predictor — the §8.2.4 "recovery mechanism has little impact"
/// claim, distilled.
pub fn recovery_comparison(s: &RunSettings, benches: &[Benchmark], kind: PredictorKind) -> Table {
    let configs = [
        s.core(),
        s.core().with_vp(VpConfig {
            kind,
            scheme: ConfidenceScheme::fpc_squash(),
            recovery: RecoveryPolicy::SquashAtCommit,
        }),
        s.core().with_vp(VpConfig {
            kind,
            scheme: ConfidenceScheme::fpc_reissue(),
            recovery: RecoveryPolicy::SelectiveReissue,
        }),
    ];
    let mut results = run_grid(s, benches, &configs);
    let reissue = results.pop().expect("three configs in");
    let squash = results.pop().expect("three configs in");
    let base = results.pop().expect("three configs in");
    let sp_s = squash.speedups(&base);
    let sp_r = reissue.speedups(&base);
    let mut t = Table::new(vec![
        "Benchmark".into(),
        "Squash@commit".into(),
        "Selective reissue".into(),
        "Delta".into(),
    ]);
    for (i, b) in benches.iter().enumerate() {
        t.row(vec![
            b.name.into(),
            fmt_f(sp_s[i], 3),
            fmt_f(sp_r[i], 3),
            fmt_f(sp_r[i] - sp_s[i], 3),
        ]);
    }
    t.row(vec![
        "g-mean".into(),
        fmt_f(mean::geometric(&sp_s).unwrap_or(1.0), 3),
        fmt_f(mean::geometric(&sp_r).unwrap_or(1.0), 3),
        String::new(),
    ]);
    t
}

/// Offline predictor evaluation: stream a benchmark's dynamic trace
/// through a predictor (in-order predict → train, with the correct-path
/// branch history — identical to what the pipeline's front-end sees) and
/// report coverage/accuracy over eligible µops.
pub fn offline_eval(
    predictor: &mut dyn vpsim_core::Predictor,
    program: &vpsim_isa::Program,
    instructions: usize,
) -> (f64, f64) {
    use vpsim_core::{HistoryState, PredictCtx};
    let mut hist = HistoryState::default();
    let (mut eligible, mut used, mut correct) = (0u64, 0u64, 0u64);
    for di in vpsim_isa::Executor::new(program).take(instructions) {
        if di.vp_eligible() {
            eligible += 1;
            let ctx = PredictCtx { seq: di.seq, pc: di.pc, hist, actual: None };
            let actual = di.result.expect("eligible µop has a result");
            if let Some(guess) = predictor.predict(&ctx).confident_value() {
                used += 1;
                if guess == actual {
                    correct += 1;
                }
            }
            predictor.train(di.seq, actual);
        }
        let op = di.inst.op;
        if op.is_cond_branch() {
            hist.push_branch(di.pc, di.taken);
        } else if op.is_control() {
            hist.push_path(di.pc);
        }
    }
    let coverage = if eligible == 0 { 0.0 } else { used as f64 / eligible as f64 };
    let accuracy = if used == 0 { 1.0 } else { correct as f64 / used as f64 };
    (coverage, accuracy)
}

/// Ablation: VTAGE tagged-component count (offline evaluation — the
/// geometry sweep isolates the predictor from pipeline effects). Shows
/// how much of VTAGE's coverage the longer histories contribute.
pub fn ablation_vtage(s: &RunSettings, benches: &[Benchmark]) -> Table {
    use vpsim_core::{Predictor as _, Vtage, VtageConfig};
    let geometries: Vec<(String, Vec<u32>)> = vec![
        ("1 comp (2)".into(), vec![2]),
        ("2 comps (2,4)".into(), vec![2, 4]),
        ("4 comps (2..16)".into(), vec![2, 4, 8, 16]),
        ("6 comps (2..64), paper".into(), vec![2, 4, 8, 16, 32, 64]),
        ("8 comps (2..128)".into(), vec![2, 4, 8, 16, 32, 64, 96, 128]),
    ];
    let mut t = Table::new(vec![
        "Geometry".into(),
        "Coverage (a-mean)".into(),
        "Accuracy (a-mean)".into(),
        "Size (KB)".into(),
    ]);
    let instructions = (s.warmup + s.measure) as usize;
    for (label, lengths) in geometries {
        let config = VtageConfig { history_lengths: lengths, ..VtageConfig::default() };
        let size_kb =
            Vtage::new(config.clone(), ConfidenceScheme::fpc_squash(), 0).storage().total_kb();
        let mut covs = Vec::new();
        let mut accs = Vec::new();
        for b in benches {
            let program = (b.build)(&s.params());
            let mut p = Vtage::new(config.clone(), ConfidenceScheme::fpc_squash(), s.seed);
            let (cov, acc) = offline_eval(&mut p, &program, instructions);
            covs.push(cov);
            accs.push(acc);
        }
        t.row(vec![
            label,
            fmt_pct(mean::arithmetic(&covs).unwrap_or(0.0), 1),
            fmt_pct(mean::arithmetic(&accs).unwrap_or(0.0), 2),
            fmt_f(size_kb, 1),
        ]);
    }
    t
}

/// Ablation: extended predictor set (per-path stride, D-FCM, gDiff over
/// VTAGE) against the paper's headline hybrid — the paper's future-work
/// section, made concrete.
pub fn ablation_extended(s: &RunSettings, benches: &[Benchmark]) -> Table {
    let kinds = [
        PredictorKind::PerPathStride,
        PredictorKind::DFcm4,
        PredictorKind::GDiffVtage,
        PredictorKind::VtageStride,
    ];
    let mut configs = vec![s.core()];
    configs.extend(kinds.iter().map(|&kind| {
        s.core().with_vp(VpConfig {
            kind,
            scheme: ConfidenceScheme::fpc_squash(),
            recovery: RecoveryPolicy::SquashAtCommit,
        })
    }));
    let mut results = run_grid(s, benches, &configs);
    let base = results.remove(0);
    let mut headers = vec!["Benchmark".into()];
    headers.extend(kinds.iter().map(|k| k.label().to_string()));
    let mut t = Table::new(headers);
    let speedups: Vec<Vec<f64>> = results.iter().map(|r| r.speedups(&base)).collect();
    for (i, b) in benches.iter().enumerate() {
        let mut row = vec![b.name.to_string()];
        for sp in &speedups {
            row.push(fmt_f(sp[i], 3));
        }
        t.row(row);
    }
    let mut grow = vec!["g-mean".to_string()];
    for sp in &speedups {
        grow.push(fmt_f(mean::geometric(sp).unwrap_or(1.0), 3));
    }
    t.row(grow);
    t
}

/// §5 ablation: counter width vs FPC. The paper notes that "simply using
/// wider counters (e.g. 6 or 7 bits) leads to much more accurate
/// predictors" and that 3-bit FPC matches them at a fraction of the
/// storage; this experiment runs VTAGE under 3/6/7-bit full counters and
/// both FPC vectors (squash-at-commit recovery).
pub fn counters(s: &RunSettings, benches: &[Benchmark]) -> Table {
    let configs: Vec<(&str, PredictorKind, ConfidenceScheme, &str)> = vec![
        ("VTAGE, 3-bit full", PredictorKind::Vtage, ConfidenceScheme::full(3), "3"),
        ("VTAGE, 6-bit full", PredictorKind::Vtage, ConfidenceScheme::full(6), "6"),
        ("VTAGE, 7-bit full", PredictorKind::Vtage, ConfidenceScheme::full(7), "7"),
        ("VTAGE, FPC squash", PredictorKind::Vtage, ConfidenceScheme::fpc_squash(), "3"),
        ("VTAGE, FPC reissue", PredictorKind::Vtage, ConfidenceScheme::fpc_reissue(), "3"),
        ("LVP, 3-bit full", PredictorKind::Lvp, ConfidenceScheme::full(3), "3"),
        ("LVP, FPC squash", PredictorKind::Lvp, ConfidenceScheme::fpc_squash(), "3"),
        // SAg ignores the scheme argument (it carries its own pattern
        // table); listed here as the §5 alternative to FPC.
        ("SAg-LVP (Burtscher)", PredictorKind::SagLvp, ConfidenceScheme::baseline(), "8+4"),
    ];
    let mut core_configs = vec![s.core()];
    core_configs.extend(configs.iter().map(|(_, kind, scheme, _)| {
        s.core().with_vp(VpConfig {
            kind: *kind,
            scheme: scheme.clone(),
            recovery: RecoveryPolicy::SquashAtCommit,
        })
    }));
    let mut results = run_grid(s, benches, &core_configs);
    let base = results.remove(0);
    let mut t = Table::new(vec![
        "Configuration".into(),
        "g-mean speedup".into(),
        "Worst case".into(),
        "Accuracy (a-mean)".into(),
        "Conf bits/entry".into(),
    ]);
    for ((label, _, _, bits), res) in configs.into_iter().zip(&results) {
        let speedups = res.speedups(&base);
        let worst = speedups.iter().cloned().fold(f64::INFINITY, f64::min);
        let accs: Vec<f64> =
            res.rows.iter().filter(|(_, r)| r.vp.used > 0).map(|(_, r)| r.vp.accuracy()).collect();
        t.row(vec![
            label.into(),
            fmt_f(mean::geometric(&speedups).unwrap_or(1.0), 3),
            fmt_f(worst, 3),
            fmt_pct(mean::arithmetic(&accs).unwrap_or(0.0), 2),
            bits.into(),
        ]);
    }
    t
}

/// Value-locality breakdown per benchmark (offline): the dynamic-weighted
/// mix of constant / strided / patterned / chaotic value streams — the
/// workload-side explanation of which predictor family wins where.
pub fn locality(s: &RunSettings, benches: &[Benchmark]) -> Table {
    use vpsim_core::locality::{LocalityAnalyzer, ValueClass};
    let mut t = Table::new(vec![
        "Benchmark".into(),
        "Constant".into(),
        "Strided".into(),
        "Patterned".into(),
        "Chaotic".into(),
    ]);
    let instructions = (s.warmup + s.measure) as usize;
    for b in benches {
        let program = (b.build)(&s.params());
        let mut a = LocalityAnalyzer::new();
        for di in vpsim_isa::Executor::new(&program).take(instructions) {
            if di.vp_eligible() {
                a.observe(di.pc, di.result.expect("eligible µop has a result"));
            }
        }
        let r = a.report();
        t.row(vec![
            b.name.into(),
            fmt_pct(r.fraction(ValueClass::Constant), 1),
            fmt_pct(r.fraction(ValueClass::Strided), 1),
            fmt_pct(r.fraction(ValueClass::Patterned), 1),
            fmt_pct(r.fraction(ValueClass::Chaotic), 1),
        ]);
    }
    t
}

/// Diagnostic table: per-benchmark baseline IPC and substrate statistics
/// (branch MPKI, cache MPKI, back-to-back fraction) plus the oracle IPC.
/// Not a paper figure — used to sanity-check workload character.
pub fn ipc_diagnostics(s: &RunSettings, benches: &[Benchmark]) -> Table {
    let mut t = Table::new(vec![
        "Benchmark".into(),
        "IPC".into(),
        "Oracle IPC".into(),
        "Br MPKI".into(),
        "L1D MPKI".into(),
        "L2 MPKI".into(),
        "B2B".into(),
    ]);
    let oracle_cfg =
        s.core().with_vp(VpConfig::enabled(PredictorKind::Oracle, RecoveryPolicy::SquashAtCommit));
    let mut results = run_grid(s, benches, &[s.core(), oracle_cfg]);
    let oracles = results.pop().expect("two configs in");
    let bases = results.pop().expect("two configs in");
    for ((name, base), (_, oracle)) in bases.rows.iter().zip(&oracles.rows) {
        let n = base.metrics.instructions;
        t.row(vec![
            (*name).into(),
            fmt_f(base.metrics.ipc(), 2),
            fmt_f(oracle.metrics.ipc(), 2),
            fmt_f(base.branch.mpki(n), 1),
            fmt_f(base.l1d.mpki(n), 1),
            fmt_f(base.l2.mpki(n), 1),
            fmt_pct(base.back_to_back.fraction(), 1),
        ]);
    }
    t
}

/// A single-benchmark speedup, used by tests.
pub fn one_speedup(
    s: &RunSettings,
    bench: &Benchmark,
    kind: PredictorKind,
    scheme: ConfidenceScheme,
    recovery: RecoveryPolicy,
) -> f64 {
    let base = s.run_baseline(bench);
    let vp = s.run_vp(bench, kind, scheme, recovery);
    speedup(&base.metrics, &vp.metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpsim_workloads::all_benchmarks;

    #[test]
    fn table1_reproduces_paper_sizes() {
        let t = table1();
        let csv = t.to_csv();
        // The paper's headline sizes, to one decimal.
        for needle in ["120.8", "251.9", "67.6", "68.6"] {
            assert!(csv.contains(needle), "missing {needle} in\n{csv}");
        }
        // VTAGE tagged components: 6 rows of 1024 entries.
        assert_eq!(csv.matches("1024").count(), 6, "{csv}");
    }

    #[test]
    fn table2_mentions_key_parameters() {
        let csv = table2().to_csv();
        for needle in ["256 / 128 / 48 / 48", "TAGE", "DDR3-1600", "15 cycles"] {
            assert!(csv.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn table3_lists_19_benchmarks() {
        let t = table3(&all_benchmarks());
        assert_eq!(t.len(), 19);
    }

    #[test]
    fn sec3_model_matches_paper_numbers() {
        // The paper quotes scenario 2 as ≈88/83/76; the exact formula
        // yields 87.9/82.3/74.8, printed as 88/82/75.
        let csv = sec3_model().to_csv();
        for needle in ["64", "-86", "-286", "88", "82", "75"] {
            assert!(csv.contains(needle), "missing {needle} in\n{csv}");
        }
    }

    #[test]
    fn sec4_regfile_shows_halved_overhead() {
        let csv = sec4_regfile().to_csv();
        assert!(csv.contains("100%"), "{csv}");
        assert!(csv.contains("46%"), "{csv}");
    }
}
