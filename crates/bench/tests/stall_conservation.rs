//! Grid-level guarantees of `SweepSpec::run_stall_report`, on the same
//! smoke/mem-smoke grids CI's perf steps run.
//!
//! Two invariants per cell: (a) the tapped `RunResult` is byte-identical
//! to the untapped sweep's (the tap observes, never perturbs), and (b) the
//! stall attribution reconciles exactly with the result
//! (`check_conservation` — also asserted inside `run_stall_report` itself,
//! which panics with the cell label on any violation).

use vpsim_bench::scenario::preset;
use vpsim_uarch::tap::check_conservation;

/// Run a preset's grid both ways and cross-check every cell.
fn preset_grid_conserves_and_matches(name: &str) {
    let mut scenario = preset(name).unwrap();
    // Keep CI cheap: the container is effectively single-CPU anyway.
    scenario.settings.threads = 1;
    let spec = scenario.to_spec();
    let stall = spec.run_stall_report();
    let plain = spec.run();
    assert_eq!(stall.cells.len(), spec.job_count(), "one cell per expanded job");

    // Expansion order: baseline over all benches, then each point.
    let mut expected = Vec::new();
    for (bench, result) in &plain.baseline.rows {
        expected.push((*bench, None, result));
    }
    for (point, suite) in &plain.points {
        for (bench, result) in &suite.rows {
            expected.push((*bench, Some(*point), result));
        }
    }
    for (cell, (bench, point, result)) in stall.cells.iter().zip(expected) {
        assert_eq!(cell.bench, bench);
        assert_eq!(cell.point, point);
        assert_eq!(&cell.result, result, "tap perturbed {}", cell.label());
        check_conservation(&cell.result, &cell.stalls)
            .unwrap_or_else(|violation| panic!("{}: {violation}", cell.label()));
        assert_eq!(cell.stalls.total_cycles(), cell.result.metrics.cycles, "{}", cell.label());
    }

    // The rendered table carries one row per cell and survives all three
    // renderers (the CI smoke step diffs the CSV against a golden).
    let table = stall.table();
    assert_eq!(table.len(), stall.cells.len());
    assert!(table.to_csv().starts_with("Benchmark,Predictor,Confidence,Recovery,Cycles"));
    assert!(table.to_json().starts_with("[\n"));
}

#[test]
fn smoke_grid_conserves_and_matches_untapped_results() {
    preset_grid_conserves_and_matches("smoke");
}

#[test]
fn mem_smoke_grid_conserves_and_matches_untapped_results() {
    preset_grid_conserves_and_matches("mem-smoke");
}
