//! The sweep engine's core guarantee: a parallel run is **bit-identical**
//! to a serial run of the same grid, for any worker count.

use vpsim_bench::sweep::{run_grid, SchemeChoice, SweepSpec};
use vpsim_bench::RunSettings;
use vpsim_core::PredictorKind;
use vpsim_uarch::{RecoveryPolicy, VpConfig};
use vpsim_workloads::benchmark;

fn tiny() -> RunSettings {
    RunSettings { warmup: 1_000, measure: 6_000, ..RunSettings::default() }
}

fn small_grid() -> SweepSpec {
    SweepSpec {
        settings: tiny(),
        predictors: vec![PredictorKind::Vtage, PredictorKind::TwoDeltaStride],
        schemes: vec![SchemeChoice::Fpc],
        recoveries: vec![RecoveryPolicy::SquashAtCommit, RecoveryPolicy::SelectiveReissue],
        benches: vec![benchmark("gzip").unwrap(), benchmark("h264ref").unwrap()],
        ..SweepSpec::default()
    }
}

#[test]
fn parallel_output_is_bit_identical_to_serial() {
    let mut spec = small_grid();
    let serial = spec.run();
    let serial_long = serial.table().to_csv();
    let serial_matrix = serial.matrix().to_csv();
    for workers in [1, 2, 4] {
        spec.settings.threads = workers;
        let parallel = spec.run();
        assert_eq!(parallel.table().to_csv(), serial_long, "{workers} workers, long table");
        assert_eq!(parallel.matrix().to_csv(), serial_matrix, "{workers} workers, matrix");
        assert_eq!(
            parallel.table().to_ascii(),
            serial.table().to_ascii(),
            "{workers} workers, ascii"
        );
    }
}

#[test]
fn engine_results_match_direct_simulator_runs() {
    let mut spec = small_grid();
    spec.settings.threads = 4;
    let results = spec.run();
    // Baseline row 0 must equal a by-hand run of the same benchmark.
    let s = spec.settings;
    let by_hand = s.run(&spec.benches[0], s.core());
    assert_eq!(results.baseline.rows[0].1, by_hand);
    // And the first grid point must match its by-hand configuration.
    let (point, suite) = &results.points[0];
    let by_hand_vp = s.run(&spec.benches[1], s.core().with_vp(point.vp_config()));
    assert_eq!(suite.rows[1].1, by_hand_vp);
}

#[test]
fn run_grid_is_thread_count_invariant() {
    let mut s = tiny();
    let benches = [benchmark("gzip").unwrap(), benchmark("mcf").unwrap()];
    let configs = [
        s.core(),
        s.core().with_vp(VpConfig::enabled(PredictorKind::Vtage, RecoveryPolicy::SquashAtCommit)),
    ];
    let serial = run_grid(&s, &benches, &configs);
    for workers in [2, 4] {
        s.threads = workers;
        let parallel = run_grid(&s, &benches, &configs);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.rows, b.rows, "{workers} workers");
        }
    }
}
