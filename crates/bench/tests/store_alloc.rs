//! Allocation accounting of the trace-store read path.
//!
//! The hot path of a store-backed sweep is `TraceStore::load`: stat the
//! entry, read it once into an exactly-sized buffer, verify the checksum,
//! and decode the four SoA sections in place with `chunks_exact` — one
//! allocation per section, plus the read buffer and path bookkeeping.
//! This test pins that down with a counting global allocator: decoding is
//! exactly one allocation per section, and the whole load path performs a
//! small, **trace-size-independent** number of allocations (a regression
//! here means someone reintroduced a grow-as-you-go read or a per-record
//! allocation).
//!
//! The mapped path (`TraceStore::map`) is held to a stricter bar: serving
//! a store hit through the borrowed [`vpsim_isa::TraceView`] must not copy
//! the trace body at all. The allocator also tracks the **largest single
//! allocation** inside a counting window — mapping the entry and walking
//! the full replay cursor must stay far below the body size, while the
//! owned `load` necessarily allocates section-sized buffers (the contrast
//! proves the measurement would catch a copy).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use vpsim_bench::store::TraceStore;
use vpsim_isa::{ProgramBuilder, Reg, Trace};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

/// Record one allocation of `size` bytes if a counting window is open.
fn charge(size: usize) {
    if COUNTING.load(Ordering::Relaxed) {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        PEAK_BYTES.fetch_max(size as u64, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        charge(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        charge(new_size);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Count allocations during `f` (single-threaded test binary, one test —
/// nothing else can be charged to the window).
fn count_allocations<T>(f: impl FnOnce() -> T) -> (T, u64) {
    ALLOCATIONS.store(0, Ordering::Relaxed);
    PEAK_BYTES.store(0, Ordering::Relaxed);
    COUNTING.store(true, Ordering::Relaxed);
    let out = f();
    COUNTING.store(false, Ordering::Relaxed);
    (out, ALLOCATIONS.load(Ordering::Relaxed))
}

/// Largest single allocation charged during the last counting window.
fn peak_allocation_bytes() -> u64 {
    PEAK_BYTES.load(Ordering::Relaxed)
}

/// A loop with loads and branches, captured to `budget` µops.
fn captured_trace(budget: u64) -> Trace {
    let mut b = ProgramBuilder::new();
    let (i, n, x) = (Reg::int(1), Reg::int(2), Reg::int(3));
    b.load_imm(n, i64::MAX / 2);
    let top = b.bind_label();
    b.addi(i, i, 1);
    b.andi(x, i, 0xFF);
    b.shli(x, x, 3);
    b.load(x, x, 64);
    b.blt(i, n, top);
    b.halt();
    Trace::capture(&b.build().unwrap(), budget)
}

#[test]
fn store_reads_decode_with_a_constant_allocation_count() {
    let dir = std::env::temp_dir().join(format!("vpsim-store-alloc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let store = TraceStore::open(&dir).unwrap();

    let small = captured_trace(2_000);
    let large = captured_trace(64_000);
    store.save("small", 1, 1, 2_000, true, &small);
    store.save("large", 1, 1, 64_000, true, &large);

    // Decoding is exactly one allocation per SoA section (µops, record
    // index, flags, payload) — `chunks_exact` in-place decode, no
    // per-record or grow-as-you-go allocations.
    let bytes = large.to_bytes();
    let (decoded, allocs) = count_allocations(|| Trace::from_bytes(&bytes).unwrap());
    assert_eq!(decoded, large);
    assert_eq!(allocs, 4, "decode must allocate once per section");

    // A corrupt entry still fails cleanly under the counter (the decode
    // path allocates nothing extra to reject a bit flip).
    let mut corrupt = bytes.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0x04;
    let (err, _) = count_allocations(|| Trace::from_bytes(&corrupt));
    assert!(err.is_err(), "a flipped bit must not decode");

    // The full disk path — path construction, open, stat, one
    // exactly-sized read, checksum, decode, Arc — is a constant
    // allocation count, independent of how large the trace is.
    let (small_loaded, small_allocs) = count_allocations(|| store.load("small", 1, 1).unwrap());
    let (large_loaded, large_allocs) = count_allocations(|| store.load("large", 1, 1).unwrap());
    assert_eq!(*small_loaded.trace, small);
    assert_eq!(*large_loaded.trace, large);
    assert_eq!(small_allocs, large_allocs, "load allocations must not scale with trace size");
    assert!(large_allocs <= 16, "load path allocated {large_allocs} times");

    // The mapped path is zero-copy: a store hit maps the entry file and
    // replays straight out of it. Opening the mapping AND walking the
    // full replay cursor must never allocate anything close to the trace
    // body — only path strings and small fixed-size bookkeeping.
    let body_len = bytes.len() as u64;
    let ((), map_allocs) = count_allocations(|| {
        let mapped = store.map("large", 1, 1).expect("mapped store hit");
        assert!(mapped.is_mapped(), "store hit is served by mmap");
        assert_eq!(mapped.view().cursor().count(), large.len(), "cursor walks every record");
    });
    let map_peak = peak_allocation_bytes();
    assert!(
        map_peak < body_len / 8,
        "mapped load+replay must not copy the trace body: \
         largest allocation {map_peak} B vs {body_len} B body"
    );
    assert!(map_allocs <= 16, "mapped path allocated {map_allocs} times");

    // By contrast, materializing the owned trace necessarily allocates
    // section-sized buffers — the counter proves the measurement above
    // would have caught a copy.
    let (_owned, _) = count_allocations(|| store.load("large", 1, 1).unwrap());
    assert!(
        peak_allocation_bytes() >= body_len / 8,
        "owned materialization allocates section-sized buffers"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
