//! The scenario layer's core guarantee: `parse(render(s)) == s` for every
//! valid scenario — rendered text is itself a loadable scenario file, so
//! `--dump-scenario` output is a complete reproduction recipe.

use proptest::prelude::*;
use vpsim_bench::scenario::{preset, preset_names, CoreOverrides, Scenario};
use vpsim_bench::sweep::{GridPoint, SchemeChoice};
use vpsim_core::PredictorKind;
use vpsim_uarch::RecoveryPolicy;
use vpsim_workloads::workload_names;

fn scheme_pool() -> Vec<SchemeChoice> {
    vec![
        SchemeChoice::Baseline,
        SchemeChoice::Fpc,
        SchemeChoice::Full(1),
        SchemeChoice::Full(6),
        SchemeChoice::Full(8),
        SchemeChoice::FpcVector([0, 4, 4, 4, 4, 5, 5]),
        SchemeChoice::FpcVector([0, 3, 3, 3, 3, 4, 4]),
        SchemeChoice::FpcVector([1, 2, 3, 4, 5, 6, 7]),
    ]
}

fn recovery_pool() -> Vec<RecoveryPolicy> {
    vec![RecoveryPolicy::SquashAtCommit, RecoveryPolicy::SelectiveReissue]
}

fn prf_pool() -> Vec<Option<usize>> {
    vec![None, Some(64), Some(96), Some(128), Some(512)]
}

fn width_pool() -> Vec<Option<usize>> {
    vec![None, Some(1), Some(2), Some(4), Some(8), Some(16)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn arbitrary_scenarios_round_trip(
        warmup in 0u64..1_000_000,
        measure in 1u64..1_000_000,
        scale in 1usize..6,
        seed in any::<u64>(),
        threads in 1usize..17,
        trace_cache in any::<bool>(),
        sampled in any::<bool>(),
        sample_intervals in 1u64..100,
        sample_period in 1u64..100_000,
        sample_warmup in 0u64..10_000,
        predictors in prop::collection::vec(
            prop::sample::select(PredictorKind::ALL.to_vec()), 0..5),
        schemes in prop::collection::vec(prop::sample::select(scheme_pool()), 0..4),
        recoveries in prop::collection::vec(prop::sample::select(recovery_pool()), 0..3),
        explicit_points in any::<bool>(),
        point_kinds in prop::collection::vec(
            prop::sample::select(PredictorKind::ALL.to_vec()), 0..4),
        point_schemes in prop::collection::vec(prop::sample::select(scheme_pool()), 0..4),
        point_recoveries in prop::collection::vec(prop::sample::select(recovery_pool()), 0..4),
        bench_indices in prop::collection::vec(0usize..28, 1..6),
        fetch_width in prop::sample::select(width_pool()),
        rob_entries in prop::sample::select(vec![None, Some(32usize), Some(128), Some(512)]),
        int_prf in prop::sample::select(prf_pool()),
        fp_prf in prop::sample::select(prf_pool()),
        store_sets in prop::sample::select(vec![None, Some(256usize), Some(4096)]),
    ) {
        let names = workload_names();
        let benches = bench_indices
            .iter()
            .map(|&i| names[i % names.len()].parse().unwrap())
            .collect();
        // Explicit points zip the three drawn lists (their lengths differ,
        // so the grid is genuinely non-rectangular).
        let points = explicit_points.then(|| {
            point_kinds
                .iter()
                .zip(&point_schemes)
                .zip(&point_recoveries)
                .map(|((&kind, &scheme), &recovery)| GridPoint { kind, scheme, recovery })
                .collect::<Vec<_>>()
        });
        let sample = sampled.then_some(vpsim_uarch::SampleConfig {
            intervals: sample_intervals,
            period: sample_period,
            warmup: sample_warmup,
        });
        let scenario = Scenario {
            settings: vpsim_bench::RunSettings {
                warmup, measure, scale, seed, threads, trace_cache, sample,
            },
            predictors,
            schemes,
            recoveries,
            points,
            benches,
            core: CoreOverrides {
                fetch_width,
                rob_entries,
                int_prf,
                fp_prf,
                store_set_entries: store_sets,
                ..CoreOverrides::default()
            },
        };
        // Only valid scenarios are covered by the guarantee; the pools
        // above occasionally produce invalid cores (store sets already
        // filtered to powers of two, so only validity holds trivially).
        prop_assert!(scenario.validate().is_ok());
        let rendered = scenario.to_string();
        let reparsed: Scenario = rendered.parse().unwrap();
        prop_assert_eq!(reparsed, scenario);
    }
}

#[test]
fn every_preset_round_trips_through_its_rendering() {
    for name in preset_names() {
        let sc = preset(name).unwrap();
        let reparsed: Scenario = sc.to_string().parse().unwrap();
        assert_eq!(reparsed, sc, "preset {name}");
    }
}

#[test]
fn rendered_scenarios_are_stable_under_a_second_round_trip() {
    // render ∘ parse is idempotent on rendered text (canonical form).
    let sc = preset("counters").unwrap();
    let once = sc.to_string();
    let twice = once.parse::<Scenario>().unwrap().to_string();
    assert_eq!(once, twice);
}
