//! Borrowed-view replay equivalence: a memory-mapped store entry replayed
//! through the zero-copy [`TraceView`] cursor must produce bit-identical
//! `RunResult`s to the owned, decoded [`Trace`] — across predictors and
//! recovery policies — and truncated or corrupt entries must be rejected
//! (evicted), never replayed.
//!
//! [`TraceView`]: vpsim_isa::TraceView

use std::path::{Path, PathBuf};

use vpsim_bench::store::TraceStore;
use vpsim_bench::sweep::SchemeChoice;
use vpsim_bench::{RunSettings, SharedTrace};
use vpsim_core::PredictorKind;
use vpsim_uarch::{CoreConfig, RecoveryPolicy, VpConfig};
use vpsim_workloads::benchmark;

fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("vpsim-trace-view-{tag}-{}", std::process::id()))
}

fn settings() -> RunSettings {
    RunSettings { warmup: 500, measure: 2_000, ..RunSettings::default() }
}

/// Baseline plus predictor × recovery grid points under FPC.
fn grid_configs(s: &RunSettings) -> Vec<CoreConfig> {
    let mut configs = vec![s.core()];
    for kind in [PredictorKind::Lvp, PredictorKind::TwoDeltaStride, PredictorKind::Vtage] {
        for recovery in [RecoveryPolicy::SquashAtCommit, RecoveryPolicy::SelectiveReissue] {
            let scheme = SchemeChoice::Fpc.build(recovery);
            configs.push(s.core().with_vp(VpConfig { kind, scheme, recovery }));
        }
    }
    configs
}

#[test]
fn mapped_view_replay_matches_owned_replay_across_the_grid() {
    let dir = scratch_dir("grid");
    let _ = std::fs::remove_dir_all(&dir);
    let store = TraceStore::open(&dir).unwrap();

    let s = settings();
    let bench = benchmark("gzip").expect("gzip exists");
    let configs = grid_configs(&s);
    let budget = configs.iter().map(|c| s.trace_budget(c)).max().unwrap();
    let trace = s.capture(&bench, budget);
    store.save(bench.name, s.scale, s.seed, budget, false, &trace);

    let mapped = store.map(bench.name, s.scale, s.seed).expect("entry maps back");
    assert!(mapped.covers(budget), "mapped entry covers the capture budget");
    assert!(mapped.is_mapped(), "store hit is served by mmap, not a heap copy");
    assert_eq!(mapped.len(), trace.len(), "view sees every record");
    let shared = SharedTrace::Mapped(mapped);

    for config in configs {
        let owned = s.run_trace(&trace, config.clone());
        let viewed = s.run_shared(&shared, config.clone());
        assert_eq!(
            owned, viewed,
            "zero-copy view replay must be bit-identical to owned replay ({config:?})"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// The single `trace-<sha256>.bin` entry file in a one-entry store.
fn entry_file(dir: &Path) -> PathBuf {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.file_name().is_some_and(|n| n.to_string_lossy().starts_with("trace-")))
        .collect();
    assert_eq!(entries.len(), 1, "one stored trace expected");
    entries.pop().unwrap()
}

#[test]
fn truncated_and_corrupt_entries_are_rejected_and_evicted() {
    let dir = scratch_dir("corrupt");
    let _ = std::fs::remove_dir_all(&dir);
    let store = TraceStore::open(&dir).unwrap();

    let s = settings();
    let bench = benchmark("gzip").expect("gzip exists");
    let budget = s.trace_budget(&s.core());
    let trace = s.capture(&bench, budget);

    // Truncation: cut the file mid-body. The outer checksum no longer
    // matches, so the entry is rejected and evicted.
    store.save(bench.name, s.scale, s.seed, budget, false, &trace);
    let path = entry_file(&dir);
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    assert!(store.map(bench.name, s.scale, s.seed).is_none(), "truncated entry must not map");
    assert!(!path.exists(), "truncated entry is evicted");

    // Truncation to less than a header: rejected before any parsing.
    store.save(bench.name, s.scale, s.seed, budget, false, &trace);
    let path = entry_file(&dir);
    std::fs::write(&path, &bytes[..8]).unwrap();
    assert!(store.map(bench.name, s.scale, s.seed).is_none(), "header stub must not map");
    assert!(!path.exists(), "header stub is evicted");

    // A single flipped bit in the trace body: the checksum catches it.
    store.save(bench.name, s.scale, s.seed, budget, false, &trace);
    let path = entry_file(&dir);
    let mut flipped = bytes.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x10;
    std::fs::write(&path, &flipped).unwrap();
    assert!(store.map(bench.name, s.scale, s.seed).is_none(), "bit flip must not map");
    assert!(!path.exists(), "corrupt entry is evicted");

    // After eviction a fresh save heals the store and maps again.
    store.save(bench.name, s.scale, s.seed, budget, false, &trace);
    let healed = store.map(bench.name, s.scale, s.seed).expect("healed entry maps");
    assert_eq!(healed.to_trace(), trace, "healed entry round-trips the capture");

    let _ = std::fs::remove_dir_all(&dir);
}
