//! End-to-end checks of the three binaries' scenario surface: a scenario
//! file must be byte-identical to the equivalent flag spelling, bad input
//! must fail loudly, and `--dump-scenario` must match the checked-in
//! golden file CI diffs against.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn run(bin: &str, args: &[&str]) -> Output {
    Command::new(bin).args(args).output().expect("binary runs")
}

fn stdout(out: &Output) -> String {
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    String::from_utf8(out.stdout.clone()).expect("utf8 stdout")
}

fn stderr(out: &Output) -> String {
    String::from_utf8(out.stderr.clone()).expect("utf8 stderr")
}

/// A scenario file in a scratch location, removed on drop.
struct TempScenario(PathBuf);

impl TempScenario {
    fn new(name: &str, text: &str) -> Self {
        let path = std::env::temp_dir().join(format!("vpsim-{}-{name}", std::process::id()));
        std::fs::write(&path, text).expect("write temp scenario");
        TempScenario(path)
    }

    fn path(&self) -> &str {
        self.0.to_str().expect("utf8 path")
    }
}

impl Drop for TempScenario {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn repo_root() -> PathBuf {
    // crates/bench → the workspace root two levels up.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("repo root")
}

#[test]
fn sweep_scenario_file_is_byte_identical_to_flags() {
    let file = TempScenario::new(
        "sweep.vps",
        "warmup = 500\nmeasure = 2000\nthreads = 2\npredictors = vtage\n\
         confidence = fpc\nrecovery = squash\nbenchmarks = gzip\n",
    );
    let from_file = run(env!("CARGO_BIN_EXE_sweep"), &["--scenario", file.path(), "--csv"]);
    let from_flags = run(
        env!("CARGO_BIN_EXE_sweep"),
        &[
            "--warmup",
            "500",
            "--measure",
            "2000",
            "--threads",
            "2",
            "--predictors",
            "vtage",
            "--confidence",
            "fpc",
            "--recovery",
            "squash",
            "--benchmarks",
            "gzip",
            "--csv",
        ],
    );
    assert_eq!(stdout(&from_file), stdout(&from_flags));
    assert!(!stdout(&from_file).is_empty());
}

#[test]
fn sweep_set_overrides_beat_the_scenario_file() {
    let file = TempScenario::new(
        "set.vps",
        "warmup = 500\nmeasure = 2000\nthreads = 1\npredictors = lvp\nbenchmarks = gzip\n",
    );
    let dumped = stdout(&run(
        env!("CARGO_BIN_EXE_sweep"),
        &["--scenario", file.path(), "--set", "predictors=oracle", "--dump-scenario"],
    ));
    assert!(dumped.contains("predictors = oracle"), "{dumped}");
    assert!(dumped.contains("measure = 2000"), "{dumped}");
}

#[test]
fn sweep_rejects_zero_threads_instead_of_clamping() {
    let out = run(env!("CARGO_BIN_EXE_sweep"), &["--threads", "0"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("threads must be >= 1"), "{}", stderr(&out));
}

#[test]
fn sweep_unknown_predictor_lists_every_spelling() {
    let out = run(env!("CARGO_BIN_EXE_sweep"), &["--predictors", "quantum"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    for spelling in ["lvp", "2d-str", "vtage-2dstr", "sag-lvp", "oracle"] {
        assert!(err.contains(spelling), "missing {spelling} in: {err}");
    }
}

#[test]
fn sweep_smoke_dump_matches_the_golden_file() {
    // CI runs the same invocation; the golden file keeps the rendered
    // format honest across refactors.
    let scenario = repo_root().join("examples/scenarios/smoke.vps");
    let golden = repo_root().join("examples/scenarios/smoke.golden.vps");
    let dumped = stdout(&run(
        env!("CARGO_BIN_EXE_sweep"),
        &["--scenario", scenario.to_str().unwrap(), "--threads", "2", "--dump-scenario"],
    ));
    let expected = std::fs::read_to_string(&golden).expect("golden file");
    assert_eq!(
        dumped, expected,
        "regenerate with: sweep --scenario {scenario:?} --threads 2 --dump-scenario"
    );
}

#[test]
fn no_trace_cache_is_byte_identical_and_timing_json_lands() {
    let file = TempScenario::new(
        "cache.vps",
        "warmup = 500\nmeasure = 2000\nthreads = 2\npredictors = vtage\nbenchmarks = gzip\n",
    );
    let cached = run(env!("CARGO_BIN_EXE_sweep"), &["--scenario", file.path(), "--csv"]);
    let inline =
        run(env!("CARGO_BIN_EXE_sweep"), &["--scenario", file.path(), "--no-trace-cache", "--csv"]);
    assert_eq!(stdout(&cached), stdout(&inline), "the escape hatch must not change a byte");
    // The flag is sugar for the scenario key, visible in the dump.
    let dumped = stdout(&run(
        env!("CARGO_BIN_EXE_sweep"),
        &["--scenario", file.path(), "--no-trace-cache", "--dump-scenario"],
    ));
    assert!(dumped.contains("trace_cache = off"), "{dumped}");
    // --timing-json writes the phase breakdown.
    let json_path = std::env::temp_dir().join(format!("vpsim-timing-{}.json", std::process::id()));
    let out = run(
        env!("CARGO_BIN_EXE_sweep"),
        &["--scenario", file.path(), "--csv", "--timing-json", json_path.to_str().unwrap()],
    );
    assert!(out.status.success());
    let json = std::fs::read_to_string(&json_path).expect("timing json written");
    let _ = std::fs::remove_file(&json_path);
    for needle in [
        "\"trace_cache\": true",
        "\"jobs\": 2",
        "\"uops\": 5000",
        "\"workloads\": 1",
        // No --store configured, so the store counters exist and are zero.
        "\"trace_store_hits\": 0",
        "\"trace_store_misses\": 0",
        "\"result_cache_hits\": 0",
        "capture_seconds",
        "ns_per_uop",
    ] {
        assert!(json.contains(needle), "missing {needle} in {json}");
    }
}

#[test]
fn simulate_no_trace_cache_is_byte_identical() {
    let args = ["k:constant", "--predictor", "lvp", "--warmup", "500", "--measure", "2000"];
    let cached = run(env!("CARGO_BIN_EXE_simulate"), &args);
    let mut inline_args = args.to_vec();
    inline_args.push("--no-trace-cache");
    let inline = run(env!("CARGO_BIN_EXE_simulate"), &inline_args);
    assert_eq!(stdout(&cached), stdout(&inline));
}

#[test]
fn sweep_preset_equals_its_flag_spelling() {
    let preset =
        run(env!("CARGO_BIN_EXE_sweep"), &["--preset", "smoke", "--threads", "2", "--csv"]);
    let flags = run(
        env!("CARGO_BIN_EXE_sweep"),
        &[
            "--warmup",
            "2000",
            "--measure",
            "10000",
            "--threads",
            "2",
            "--predictors",
            "vtage",
            "--benchmarks",
            "gzip,mcf",
            "--csv",
        ],
    );
    assert_eq!(stdout(&preset), stdout(&flags));
}

#[test]
fn simulate_scenario_file_is_byte_identical_to_flags() {
    let file = TempScenario::new(
        "simulate.vps",
        "warmup = 500\nmeasure = 2000\npredictors = lvp\nconfidence = fpc\n\
         recovery = squash\nbenchmarks = k:constant\n",
    );
    let from_file = run(env!("CARGO_BIN_EXE_simulate"), &["--scenario", file.path()]);
    let from_flags = run(
        env!("CARGO_BIN_EXE_simulate"),
        &["k:constant", "--predictor", "lvp", "--warmup", "500", "--measure", "2000"],
    );
    assert_eq!(stdout(&from_file), stdout(&from_flags));
    assert!(stdout(&from_file).contains("predictor LVP"));
}

#[test]
fn paper_scenario_file_is_byte_identical_to_flags() {
    let file = TempScenario::new(
        "paper.vps",
        "warmup = 500\nmeasure = 2000\nthreads = 2\nbenchmarks = gzip, mcf\n",
    );
    let from_file =
        run(env!("CARGO_BIN_EXE_paper"), &["sec3-backtoback", "--scenario", file.path(), "--csv"]);
    let from_flags = run(
        env!("CARGO_BIN_EXE_paper"),
        &[
            "sec3-backtoback",
            "--warmup",
            "500",
            "--measure",
            "2000",
            "--threads",
            "2",
            "--benchmarks",
            "gzip,mcf",
            "--csv",
        ],
    );
    assert_eq!(stdout(&from_file), stdout(&from_flags));
}

#[test]
fn dump_output_is_itself_a_loadable_scenario() {
    let dumped = stdout(&run(
        env!("CARGO_BIN_EXE_sweep"),
        &["--preset", "counters", "--threads", "3", "--dump-scenario"],
    ));
    let file = TempScenario::new("redump.vps", &dumped);
    let redumped =
        stdout(&run(env!("CARGO_BIN_EXE_sweep"), &["--scenario", file.path(), "--dump-scenario"]));
    assert_eq!(dumped, redumped);
}

#[test]
fn store_flag_is_byte_identical_and_repeats_hit_the_result_cache() {
    let file = TempScenario::new(
        "store.vps",
        "warmup = 500\nmeasure = 2000\nthreads = 2\npredictors = vtage\nbenchmarks = mcf\n",
    );
    let store = std::env::temp_dir().join(format!("vpsim-store-cli-{}", std::process::id()));
    let json_path =
        std::env::temp_dir().join(format!("vpsim-store-timing-{}.json", std::process::id()));
    let baseline = stdout(&run(env!("CARGO_BIN_EXE_sweep"), &["--scenario", file.path(), "--csv"]));
    let first = stdout(&run(
        env!("CARGO_BIN_EXE_sweep"),
        &["--scenario", file.path(), "--csv", "--store", store.to_str().unwrap()],
    ));
    assert_eq!(first, baseline, "stores never change the output");
    // A second process over the same store simulates nothing.
    let second = stdout(&run(
        env!("CARGO_BIN_EXE_sweep"),
        &[
            "--scenario",
            file.path(),
            "--csv",
            "--store",
            store.to_str().unwrap(),
            "--timing-json",
            json_path.to_str().unwrap(),
        ],
    ));
    assert_eq!(second, baseline, "cached cells render byte-identically");
    let json = std::fs::read_to_string(&json_path).expect("timing json written");
    let _ = std::fs::remove_file(&json_path);
    let _ = std::fs::remove_dir_all(&store);
    for needle in ["\"result_cache_hits\": 2", "\"uops\": 0", "\"captures\": 0"] {
        assert!(json.contains(needle), "missing {needle} in {json}");
    }
}
