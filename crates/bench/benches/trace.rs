//! Capture-once / replay-many macrobenchmarks: how much host time the
//! trace layer saves per simulation job.
//!
//! Three measurements per kernel:
//! * `inline`  — the streaming path (functional executor inside the
//!   timing loop), i.e. what every grid cell paid before the trace layer.
//! * `capture` — the one-time cost of recording the trace.
//! * `replay`  — one timing run over the captured trace; a grid of N
//!   cells pays `capture + N × replay` instead of `N × inline`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use vpsim_core::PredictorKind;
use vpsim_isa::Trace;
use vpsim_uarch::{CoreConfig, RecoveryPolicy, Simulator, VpConfig};
use vpsim_workloads::microkernels;

const INSTRUCTIONS: u64 = 20_000;

fn bench_trace(c: &mut Criterion) {
    let kernels: Vec<(&str, vpsim_isa::Program)> = vec![
        ("strided", microkernels::strided_loop(256, 1)),
        ("tight_loop", microkernels::tight_loop()),
        ("matmul", microkernels::matmul(8)),
    ];
    let sim = Simulator::new(
        CoreConfig::default()
            .with_vp(VpConfig::enabled(PredictorKind::VtageStride, RecoveryPolicy::SquashAtCommit)),
    );
    let budget = sim.config().trace_budget(0, INSTRUCTIONS);
    let mut group = c.benchmark_group("trace");
    group.throughput(Throughput::Elements(INSTRUCTIONS));
    group.sample_size(10);
    for (name, program) in &kernels {
        group.bench_with_input(BenchmarkId::new("inline", name), program, |b, p| {
            b.iter(|| black_box(sim.run(p, INSTRUCTIONS)));
        });
        group.bench_with_input(BenchmarkId::new("capture", name), program, |b, p| {
            b.iter(|| black_box(Trace::capture(p, budget)));
        });
        let trace = Trace::capture(program, budget);
        group.bench_with_input(BenchmarkId::new("replay", name), &trace, |b, t| {
            b.iter(|| black_box(sim.run_trace(t, 0, INSTRUCTIONS)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_trace);
criterion_main!(benches);
