//! Criterion microbenchmarks for the substrate crates: TAGE lookups, cache
//! hierarchy accesses, DRAM timing, and functional execution throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use vpsim_branch::Tage;
use vpsim_core::HistoryState;
use vpsim_isa::Executor;
use vpsim_mem::{MemoryConfig, MemoryHierarchy};
use vpsim_workloads::microkernels;

fn bench_tage(c: &mut Criterion) {
    let mut group = c.benchmark_group("tage");
    group.throughput(Throughput::Elements(1));
    group.bench_function("predict_train", |b| {
        let mut tage = Tage::with_defaults(1);
        let mut hist = HistoryState::default();
        let mut seq = 0u64;
        b.iter(|| {
            let pc = 0x40 + (seq % 64) * 4;
            let taken = (seq / 3).is_multiple_of(2);
            let pred = tage.predict(seq, pc, &hist);
            tage.train(seq, taken);
            hist.push_branch(pc, taken);
            seq += 1;
            black_box(pred)
        });
    });
    group.finish();
}

fn bench_memory(c: &mut Criterion) {
    let mut group = c.benchmark_group("memory");
    group.throughput(Throughput::Elements(1));
    group.bench_function("l1_hit", |b| {
        let mut m = MemoryHierarchy::new(MemoryConfig::default());
        let mut now = m.load(0x40, 0x1000, 0);
        b.iter(|| {
            now = m.load(0x40, 0x1000, now);
            black_box(now)
        });
    });
    group.bench_function("streaming_misses", |b| {
        let mut m = MemoryHierarchy::new(MemoryConfig::default());
        let mut now = 0u64;
        let mut addr = 0x10_0000u64;
        b.iter(|| {
            addr += 64;
            now = m.load(0x40, addr, now) + 1;
            black_box(now)
        });
    });
    group.finish();
}

fn bench_functional_executor(c: &mut Criterion) {
    let mut group = c.benchmark_group("executor");
    let program = microkernels::matmul(8);
    group.throughput(Throughput::Elements(100_000));
    group.sample_size(10);
    group.bench_function("matmul_100k_uops", |b| {
        b.iter(|| {
            let n = Executor::new(&program).take(100_000).count();
            black_box(n)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_tage, bench_memory, bench_functional_executor);
criterion_main!(benches);
