//! Criterion microbenchmarks: predictor lookup+train throughput.
//!
//! These measure the Table 1 predictors on the three canonical value
//! streams (constant, strided, chaotic) — useful for spotting performance
//! regressions in the predictor implementations themselves (the `paper`
//! binary is the harness for the paper's figures).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vpsim_core::{ConfidenceScheme, HistoryState, PredictCtx, PredictorKind};

fn value_stream(kind: &str, k: u64) -> u64 {
    match kind {
        "constant" => 42,
        "strided" => k * 8,
        _ => k.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407),
    }
}

fn bench_predictors(c: &mut Criterion) {
    let mut group = c.benchmark_group("predict_train");
    for kind in [
        PredictorKind::Lvp,
        PredictorKind::TwoDeltaStride,
        PredictorKind::Fcm4,
        PredictorKind::Vtage,
        PredictorKind::VtageStride,
    ] {
        for stream in ["constant", "strided", "chaotic"] {
            group.bench_with_input(BenchmarkId::new(kind.label(), stream), &stream, |b, stream| {
                let mut p = kind.build(ConfidenceScheme::fpc_squash(), 1);
                let mut hist = HistoryState::default();
                let mut seq = 0u64;
                b.iter(|| {
                    let pc = 0x40 + (seq % 16) * 4;
                    let v = value_stream(stream, seq / 16);
                    let ctx = PredictCtx { seq, pc, hist, actual: Some(v) };
                    let pred = p.predict(&ctx);
                    p.train(seq, v);
                    hist.push_branch(pc, seq.is_multiple_of(3));
                    seq += 1;
                    black_box(pred)
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_predictors);
criterion_main!(benches);
