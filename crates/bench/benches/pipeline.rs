//! Criterion macrobenchmarks: simulator throughput (simulated µops per
//! second of host time) on representative kernels, with and without value
//! prediction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use vpsim_core::PredictorKind;
use vpsim_uarch::{CoreConfig, RecoveryPolicy, Simulator, VpConfig};
use vpsim_workloads::microkernels;

const INSTRUCTIONS: u64 = 20_000;

fn bench_pipeline(c: &mut Criterion) {
    let kernels: Vec<(&str, vpsim_isa::Program)> = vec![
        ("strided", microkernels::strided_loop(256, 1)),
        ("pointer_chase", microkernels::pointer_chase(4096)),
        ("tight_loop", microkernels::tight_loop()),
    ];
    let mut group = c.benchmark_group("simulator");
    group.throughput(Throughput::Elements(INSTRUCTIONS));
    group.sample_size(10);
    for (name, program) in &kernels {
        group.bench_with_input(BenchmarkId::new("no_vp", name), program, |b, p| {
            let sim = Simulator::new(CoreConfig::default());
            b.iter(|| black_box(sim.run(p, INSTRUCTIONS)));
        });
        group.bench_with_input(BenchmarkId::new("vtage_stride", name), program, |b, p| {
            let sim = Simulator::new(CoreConfig::default().with_vp(VpConfig::enabled(
                PredictorKind::VtageStride,
                RecoveryPolicy::SquashAtCommit,
            )));
            b.iter(|| black_box(sim.run(p, INSTRUCTIONS)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
