//! Minimal, dependency-free stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny slice of `rand` it actually uses: `StdRng` seeded via
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen`] / [`Rng::gen_range`]
//! over integer and float ranges. The generator is SplitMix64, which is
//! deterministic, fast and more than adequate for workload-data generation
//! (nothing here is cryptographic). Output differs from the real `rand`
//! crate, which is fine: all consumers treat the stream as opaque.

/// Core randomness source: a 64-bit output per step.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// High-level convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniformly random value of `T` (mirrors `rand`'s `Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform value in `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<G: RngCore> Rng for G {}

/// Seeding, mirroring `rand::SeedableRng` (only the `u64` entry point).
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named RNG types, mirroring `rand::rngs`.
pub mod rngs {
    /// Deterministic seeded generator (SplitMix64 under the hood; the real
    /// `StdRng` is ChaCha12, but callers only rely on determinism).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard {
    /// Draw one value from `rng`.
    fn sample<G: RngCore>(rng: &mut G) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<G: RngCore>(rng: &mut G) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<G: RngCore>(rng: &mut G) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u128 {
    fn sample<G: RngCore>(rng: &mut G) -> Self {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

impl Standard for f64 {
    fn sample<G: RngCore>(rng: &mut G) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Uniform in `[0, 1)` from 53 random mantissa bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges accepted by [`Rng::gen_range`], mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample<G: RngCore>(self, rng: &mut G) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let off = (u128::sample(rng) % width) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<G: RngCore>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                let off = (u128::sample(rng) % width) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<G: RngCore>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        // start + unit*(end-start) can round up to exactly `end` (e.g. when
        // f64 spacing near `end` exceeds the unit step); clamp to keep the
        // half-open contract, as real rand does.
        let v = self.start + unit_f64(rng.next_u64()) * (self.end - self.start);
        v.min(self.end.next_down())
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(0u64..64);
            assert!(v < 64);
            let s = r.gen_range(-100i64..100);
            assert!((-100..100).contains(&s));
            let u = r.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v));
        }
    }

    #[test]
    fn float_range_excludes_end_even_when_rounding_up() {
        // f64 spacing at 1e16 is 2.0, so start + unit*(end-start) rounds to
        // `end` for most unit values; the clamp must keep the range half-open.
        let mut r = StdRng::seed_from_u64(11);
        let (lo, hi) = (1e16, 1e16 + 2.0);
        for _ in 0..1000 {
            let v = r.gen_range(lo..hi);
            assert!(v >= lo && v < hi, "{v} escaped [{lo}, {hi})");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }
}
