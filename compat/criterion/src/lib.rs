//! Minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of criterion its benches use: `Criterion`,
//! `benchmark_group` / `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Throughput`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Instead of criterion's full statistical machinery this shim does a
//! short warm-up, then times batches until a wall-clock budget is spent
//! and reports the median ns/iter (plus derived throughput) to stdout.
//! Budget is configurable via `CRITERION_SHIM_MS` (milliseconds per
//! benchmark, default 300). The numbers are honest medians but carry no
//! confidence intervals; for regression tracking compare like with like.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Per-benchmark wall-clock measurement budget.
fn budget() -> Duration {
    let ms = std::env::var("CRITERION_SHIM_MS").ok().and_then(|s| s.parse().ok()).unwrap_or(300u64);
    Duration::from_millis(ms)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Two-part benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build `function/parameter`.
    pub fn new<F: Display, P: Display>(function: F, parameter: P) -> Self {
        BenchmarkId { id: format!("{function}/{parameter}") }
    }

    /// Build from a parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<f64>, // ns per iteration, one per batch
}

impl Bencher {
    /// Time `f`, collecting batched samples until the budget is spent.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up and batch-size calibration: grow the batch until one
        // batch costs ≳1% of the budget, so the Instant overhead vanishes.
        let budget = budget();
        let mut batch = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let dt = t.elapsed();
            if dt >= budget / 100 || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        let start = Instant::now();
        while start.elapsed() < budget {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            self.samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the per-iteration throughput used for derived rates.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the shim sizes by wall-clock budget.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<D: Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: D,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { samples: Vec::new() };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &mut b.samples, self.throughput);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<D: Display, I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: D,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { samples: Vec::new() };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &mut b.samples, self.throughput);
        self
    }

    /// End the group (stdout formatting only).
    pub fn finish(self) {
        println!();
    }
}

fn report(name: &str, samples: &mut [f64], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = samples[samples.len() / 2];
    let rate = |per_iter: u64| per_iter as f64 / (median * 1e-9);
    match throughput {
        Some(Throughput::Elements(n)) => {
            println!("{name:<48} {median:>14.1} ns/iter  {:>14.0} elem/s", rate(n));
        }
        Some(Throughput::Bytes(n)) => {
            println!("{name:<48} {median:>14.1} ns/iter  {:>14.0} B/s", rate(n));
        }
        None => println!("{name:<48} {median:>14.1} ns/iter"),
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into(), throughput: None }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { samples: Vec::new() };
        f(&mut b);
        report(name, &mut b.samples, None);
        self
    }

    /// Accepted for API compatibility (criterion's final report hook).
    pub fn final_summary(&mut self) {}
}

/// Re-export of `std::hint::black_box` for criterion-API compatibility.
pub use std::hint::black_box;

/// Define a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define the bench-harness `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // The libtest-compatible harness is invoked with flags like
            // `--bench`; a `--list` probe must print nothing and exit 0.
            if std::env::args().any(|a| a == "--list") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        std::env::set_var("CRITERION_SHIM_MS", "5");
        let mut b = Bencher { samples: Vec::new() };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        assert!(!b.samples.is_empty());
        assert!(b.samples.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn group_api_compiles_and_runs() {
        std::env::set_var("CRITERION_SHIM_MS", "2");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(10)).sample_size(10);
        g.bench_function("f", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("p", 3), &3u64, |b, &v| b.iter(|| v * 2));
        g.finish();
    }
}
