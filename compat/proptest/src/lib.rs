//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of proptest its tests use:
//!
//! * the [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//!   header) generating one `#[test]` per property;
//! * [`Strategy`] implemented for integer/float ranges, `any::<T>()`,
//!   tuples, [`prop::collection::vec`], [`prop::sample::select`] and
//!   [`Strategy::prop_map`];
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Differences from real proptest, deliberately accepted: no shrinking
//! (a failing case prints its inputs via the panic message instead), no
//! persistence of regression seeds (every run replays the same
//! deterministic seed sequence, so failures are reproducible by
//! construction), and a smaller strategy combinator library. The default
//! case count is 32, overridable by `PROPTEST_CASES`; an explicit
//! `with_cases(n)` in the source wins over the env var, as in real
//! proptest.

use std::ops::{Range, RangeInclusive};

/// Deterministic per-test RNG (SplitMix64). Seeded from the test name and
/// case index so every run of the suite explores the same inputs — the
/// shim's substitute for proptest's regression-file persistence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test identifier and case number.
    pub fn deterministic(test_name: &str, case: u32) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h ^ ((case as u64) << 32 | 0x5DEE_CE66) }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_u128(&mut self) -> u128 {
        (self.next_u64() as u128) << 64 | self.next_u64() as u128
    }
}

/// Runner configuration; only `cases` is interpreted.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is run with.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 32 cases, or `PROPTEST_CASES` if set. Mirroring real proptest, the
    /// env var feeds the *default* config only — an explicit
    /// `with_cases(n)` in the source always wins.
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(32);
        ProptestConfig { cases }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The value produced.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let width = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u128() % width) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy range is empty");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u128() % width) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Marker produced by [`any`]; generates uniformly random values.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Strategy for a uniformly random `T` (mirrors `proptest::prelude::any`).
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(std::marker::PhantomData)
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<u128> {
    type Value = u128;
    fn generate(&self, rng: &mut TestRng) -> u128 {
        rng.next_u128()
    }
}

impl Strategy for Any<i128> {
    type Value = i128;
    fn generate(&self, rng: &mut TestRng) -> i128 {
        rng.next_u128() as i128
    }
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident / $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

/// Sub-strategies namespaced like proptest's `prop::` module.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy producing `Vec`s with a uniformly drawn length.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            elem: S,
            size: Range<usize>,
        }

        /// A `Vec` of values from `elem`, with length drawn from `size`.
        pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let len = self.size.clone().generate(rng);
                (0..len).map(|_| self.elem.generate(rng)).collect()
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use super::super::{Strategy, TestRng};

        /// Strategy drawing uniformly from a fixed list.
        #[derive(Debug, Clone)]
        pub struct Select<T> {
            items: Vec<T>,
        }

        /// Pick uniformly from `items` (must be non-empty).
        pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
            assert!(!items.is_empty(), "select: empty choice list");
            Select { items }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                self.items[rng.next_u64() as usize % self.items.len()].clone()
            }
        }
    }
}

/// Everything a proptest-style test file needs, via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Assert inside a property (panics; the shim has no `Result` plumbing).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests. Supports the common proptest surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0u64..100, v in prop::collection::vec(any::<bool>(), 1..10)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cases = ($cfg).cases;
            for case in 0..cases {
                let mut __rng = $crate::TestRng::deterministic(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_stay_in_bounds() {
        let mut rng = crate::TestRng::deterministic("bounds", 0);
        for _ in 0..500 {
            let x = (5u64..10).generate(&mut rng);
            assert!((5..10).contains(&x));
            let y = (0u32..=128).generate(&mut rng);
            assert!(y <= 128);
            let s = (-100i64..100).generate(&mut rng);
            assert!((-100..100).contains(&s));
            let v = prop::collection::vec(0u8..3, 1..200).generate(&mut rng);
            assert!(!v.is_empty() && v.len() < 200);
            assert!(v.iter().all(|&e| e < 3));
        }
    }

    #[test]
    fn select_and_map_work() {
        let mut rng = crate::TestRng::deterministic("select", 1);
        let s = prop::sample::select(vec![1u64, 2, 3]);
        for _ in 0..100 {
            assert!([1, 2, 3].contains(&s.generate(&mut rng)));
            let m = (0u64..4).prop_map(|x| x * 4).generate(&mut rng);
            assert!(m % 4 == 0 && m < 16);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::TestRng::deterministic("t", 3);
        let mut b = crate::TestRng::deterministic("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::deterministic("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #[test]
        fn the_macro_itself_runs(x in 0u8..10, flag in any::<bool>()) {
            prop_assert!(x < 10);
            let _ = flag;
        }
    }
}
