//! # vpsim — Practical Data Value Speculation for Future High-End Processors
//!
//! A from-scratch Rust reproduction of **Perais & Seznec, HPCA 2014**:
//! the VTAGE value predictor, Forward Probabilistic Counters (FPC) for
//! confidence estimation, and commit-time prediction validation — together
//! with the entire simulation substrate the paper's evaluation depends on
//! (an 8-wide out-of-order core, TAGE branch prediction, a cache/DRAM
//! hierarchy and SPEC-analogue workloads).
//!
//! This crate is a facade that re-exports the workspace members:
//!
//! * [`core`] (`vpsim-core`) — the value predictors and confidence schemes
//!   (the paper's contribution): LVP, 2-delta stride, per-path stride,
//!   order-4 FCM, D-FCM, VTAGE, hybrids, gDiff, and the FPC scheme.
//! * [`event`] (`vpsim-event`) — the shared discrete-event core: the
//!   timing wheel the pipeline's completion stage drains and the
//!   watermark-gated sparse event sets the MSHR files schedule fills on.
//! * [`isa`] (`vpsim-isa`) — the µop ISA, program builder and functional
//!   executor that produce dynamic instruction traces, plus the
//!   capture-once/replay-many trace layer (`Trace`, `TraceCursor`, the
//!   `InstSource` trait) the cycle-level core replays from.
//! * [`branch`] (`vpsim-branch`) — TAGE direction predictor, BTB, RAS.
//! * [`mem`] (`vpsim-mem`) — L1I/L1D/L2 caches, MSHRs, stride prefetcher,
//!   DDR3-1600 timing model.
//! * [`uarch`] (`vpsim-uarch`) — the cycle-level out-of-order core with
//!   value-prediction integration and both recovery schemes.
//! * [`workloads`] (`vpsim-workloads`) — 19 synthetic SPEC CPU2000/2006
//!   benchmark analogues plus microkernels.
//! * [`stats`] (`vpsim-stats`) — counters, metrics and table formatting.
//! * [`mod@bench`] (`vpsim-bench`) — the experiment harness: paper
//!   table/figure reproductions, the deterministic parallel sweep engine
//!   ([`bench::sweep`]), the process-wide capture-once/replay-many trace
//!   cache ([`bench::trace_cache`]), and the declarative scenario layer
//!   ([`bench::scenario`]: `.vps` files, named presets, `--set`
//!   overrides) behind the `paper`, `simulate` and `sweep` binaries,
//!   plus the persistent trace/result stores ([`bench::store`]) and the
//!   wire protocol + client ([`bench::protocol`], [`bench::remote`]) of
//!   the service layer.
//! * [`serve`] (`vpsim-serve`) — sweep-as-a-service: the long-running TCP
//!   job server behind the `serve` binary and `sweep --remote`, streaming
//!   per-cell results and serving repeated scenarios from the persistent
//!   result cache with zero re-simulation.
//!
//! `ARCHITECTURE.md` at the repository root maps the paper's concepts
//! (VTAGE, FPC, validation at commit, squash recovery) to these crates.
//!
//! ## Quickstart
//!
//! ```rust
//! use vpsim::uarch::{CoreConfig, Simulator, VpConfig, RecoveryPolicy};
//! use vpsim::core::PredictorKind;
//! use vpsim::workloads::microkernels;
//!
//! // Build a small strided-loop program and trace it.
//! let program = microkernels::strided_loop(64, 8);
//!
//! // Simulate without value prediction…
//! let base = Simulator::new(CoreConfig::default()).run(&program, 100_000);
//!
//! // …and with a VTAGE value predictor validated at commit.
//! let vp = VpConfig::enabled(PredictorKind::Vtage, RecoveryPolicy::SquashAtCommit);
//! let with_vp = Simulator::new(CoreConfig::default().with_vp(vp)).run(&program, 100_000);
//!
//! assert!(with_vp.metrics.ipc() >= base.metrics.ipc() * 0.95);
//! ```

pub use vpsim_bench as bench;
pub use vpsim_branch as branch;
pub use vpsim_core as core;
pub use vpsim_event as event;
pub use vpsim_isa as isa;
pub use vpsim_mem as mem;
pub use vpsim_serve as serve;
pub use vpsim_stats as stats;
pub use vpsim_uarch as uarch;
pub use vpsim_workloads as workloads;
