//! The trace layer's end-to-end guarantee: a [`RunResult`] obtained by
//! replaying a captured trace (`Simulator::run_trace`) is **byte-identical**
//! to the inline-`Executor` streaming path, for every `PredictorKind` ×
//! `RecoveryPolicy` combination the workspace can instantiate, the no-VP
//! baseline, and non-default warm-up/core sizings.

use vpsim::core::PredictorKind;
use vpsim::isa::Trace;
use vpsim::uarch::{CoreConfig, RecoveryPolicy, RunResult, Simulator, VpConfig};
use vpsim::workloads::microkernels;

/// Every predictor the workspace can instantiate, including extension
/// baselines and the oracle.
const ALL_KINDS: [PredictorKind; 11] = [
    PredictorKind::Lvp,
    PredictorKind::TwoDeltaStride,
    PredictorKind::PerPathStride,
    PredictorKind::Fcm4,
    PredictorKind::DFcm4,
    PredictorKind::Vtage,
    PredictorKind::VtageStride,
    PredictorKind::FcmStride,
    PredictorKind::GDiffVtage,
    PredictorKind::SagLvp,
    PredictorKind::Oracle,
];

const ALL_POLICIES: [RecoveryPolicy; 2] =
    [RecoveryPolicy::SquashAtCommit, RecoveryPolicy::SelectiveReissue];

const WARMUP: u64 = 500;
const MEASURE: u64 = 2_500;

fn both_paths(config: CoreConfig, program: &vpsim::isa::Program) -> (RunResult, RunResult) {
    let sim = Simulator::new(config);
    let inline = sim.run_with_warmup(program, WARMUP, MEASURE);
    let trace = Trace::capture(program, sim.config().trace_budget(WARMUP, MEASURE));
    let replayed = sim.run_trace(&trace, WARMUP, MEASURE);
    (inline, replayed)
}

#[test]
fn replay_is_byte_identical_for_every_predictor_and_recovery() {
    // Strided loads + a loop branch exercise prediction, validation and
    // both recovery paths on every predictor.
    let program = microkernels::strided_loop(64, 8);
    for kind in ALL_KINDS {
        for policy in ALL_POLICIES {
            let config = CoreConfig::default().with_vp(VpConfig::enabled(kind, policy));
            let (inline, replayed) = both_paths(config, &program);
            assert_eq!(
                inline.metrics.instructions, MEASURE,
                "{kind:?}/{policy:?} did not retire the full budget"
            );
            assert_eq!(inline, replayed, "{kind:?}/{policy:?} replay differs from inline");
        }
    }
}

#[test]
fn replay_is_byte_identical_without_value_prediction() {
    let program = microkernels::pointer_chase(1024);
    let (inline, replayed) = both_paths(CoreConfig::default(), &program);
    assert_eq!(inline, replayed);
}

#[test]
fn replay_is_byte_identical_on_a_resized_core() {
    // A narrow core changes the fetch-ahead bound trace_budget encodes;
    // replay must stay exact there too.
    let config = CoreConfig {
        fetch_width: 4,
        issue_width: 4,
        retire_width: 4,
        rob_entries: 64,
        iq_entries: 32,
        ..CoreConfig::default()
    }
    .with_vp(VpConfig::enabled(PredictorKind::VtageStride, RecoveryPolicy::SquashAtCommit));
    let program = microkernels::matmul(8);
    let (inline, replayed) = both_paths(config, &program);
    assert_eq!(inline, replayed);
}

#[test]
fn one_shared_trace_serves_many_configurations() {
    // Capture once with the largest budget; every configuration replays
    // from the same trace and matches its own inline run — the sharing
    // pattern the sweep engine uses (Arc<Trace> across worker threads).
    let program = microkernels::strided_loop(64, 8);
    let budget = CoreConfig::default().trace_budget(WARMUP, MEASURE);
    let trace = Trace::capture(&program, budget);
    for kind in [PredictorKind::Lvp, PredictorKind::Vtage, PredictorKind::Oracle] {
        let config =
            CoreConfig::default().with_vp(VpConfig::enabled(kind, RecoveryPolicy::SquashAtCommit));
        let sim = Simulator::new(config);
        assert_eq!(
            sim.run_trace(&trace, WARMUP, MEASURE),
            sim.run_with_warmup(&program, WARMUP, MEASURE),
            "{kind:?} differs replaying the shared trace"
        );
    }
}
