//! The event tap's end-to-end guarantee: attaching any sink to a run is
//! **observation only**. A [`RunResult`] produced with a live
//! `StallTally`/`CycleLog` sink is byte-identical to the sink-free entry
//! points for every predictor × recovery combination, under trace replay,
//! and across arbitrary small scenarios (property test) — including runs
//! whose long-latency misses exercise the idle-skip fast path, which must
//! emit batched span records without perturbing the clock.
//!
//! Every tapped run is additionally conservation-checked: the per-cause
//! cycle attribution must sum exactly to the measured cycle count, and the
//! tap's event counts must reconcile with the simulator's own `Counters`
//! (see `vpsim::uarch::tap::check_conservation`).

use proptest::prelude::*;
use vpsim::core::PredictorKind;
use vpsim::isa::{Program, Trace};
use vpsim::mem::{CacheConfig, MemoryConfig};
use vpsim::uarch::tap::{check_conservation, CycleLog, StallTally};
use vpsim::uarch::{CoreConfig, RecoveryPolicy, RunResult, Simulator, VpConfig};
use vpsim::workloads::microkernels;

const ALL_KINDS: [PredictorKind; 11] = [
    PredictorKind::Lvp,
    PredictorKind::TwoDeltaStride,
    PredictorKind::PerPathStride,
    PredictorKind::Fcm4,
    PredictorKind::DFcm4,
    PredictorKind::Vtage,
    PredictorKind::VtageStride,
    PredictorKind::FcmStride,
    PredictorKind::GDiffVtage,
    PredictorKind::SagLvp,
    PredictorKind::Oracle,
];

const ALL_POLICIES: [RecoveryPolicy; 2] =
    [RecoveryPolicy::SquashAtCommit, RecoveryPolicy::SelectiveReissue];

const WARMUP: u64 = 500;
const MEASURE: u64 = 2_500;

/// Run `program` twice under `config` — tap disabled and tap enabled with
/// a composite `(StallTally, CycleLog)` sink — assert the results are
/// byte-identical and the tapped run conserves, then return the pair.
fn tapped_matches_untapped(
    config: CoreConfig,
    program: &Program,
    warmup: u64,
    measure: u64,
) -> (RunResult, RunResult) {
    let sim = Simulator::new(config);
    let untapped = sim.run_with_warmup(program, warmup, measure);
    let mut sink = (StallTally::default(), CycleLog::with_capacity(64));
    let tapped =
        sim.run_source_with_sink(vpsim::isa::Executor::new(program), warmup, measure, &mut sink);
    assert_eq!(untapped, tapped, "an attached sink perturbed the simulation");
    check_conservation(&tapped, &sink.0.measured())
        .unwrap_or_else(|violation| panic!("conservation broken: {violation}"));
    (untapped, tapped)
}

#[test]
fn tap_is_invisible_for_every_predictor_and_recovery() {
    let program = microkernels::strided_loop(64, 8);
    for kind in ALL_KINDS {
        for policy in ALL_POLICIES {
            let config = CoreConfig::default().with_vp(VpConfig::enabled(kind, policy));
            let (untapped, _) = tapped_matches_untapped(config, &program, WARMUP, MEASURE);
            assert_eq!(
                untapped.metrics.instructions, MEASURE,
                "{kind:?}/{policy:?} did not retire the full budget"
            );
        }
    }
}

#[test]
fn tap_is_invisible_without_value_prediction() {
    tapped_matches_untapped(
        CoreConfig::default(),
        &microkernels::pointer_chase(1024),
        WARMUP,
        MEASURE,
    );
}

#[test]
fn tap_is_invisible_under_trace_replay() {
    let program = microkernels::matmul(8);
    let config = CoreConfig::default()
        .with_vp(VpConfig::enabled(PredictorKind::VtageStride, RecoveryPolicy::SquashAtCommit));
    let sim = Simulator::new(config);
    let trace = Trace::capture(&program, sim.config().trace_budget(WARMUP, MEASURE));
    let untapped = sim.run_trace(&trace, WARMUP, MEASURE);
    let mut tally = StallTally::default();
    let tapped = sim.run_trace_with_sink(&trace, WARMUP, MEASURE, &mut tally);
    assert_eq!(untapped, tapped);
    check_conservation(&tapped, &tally.measured()).unwrap();
}

/// A single-MSHR, tiny-cache hierarchy turns the pointer chase into long
/// serialized misses — the machine sleeps through them on the idle-skip
/// fast path, so this pins span-batched `Cycle` records: attribution must
/// still sum exactly to the measured cycles.
#[test]
fn tap_is_invisible_and_conserves_under_idle_skip() {
    let mem = MemoryConfig {
        l1i: CacheConfig { size_bytes: 4 * 1024, ways: 2, line_bytes: 64, latency: 2 },
        l1d: CacheConfig { size_bytes: 1024, ways: 2, line_bytes: 64, latency: 2 },
        l2: CacheConfig { size_bytes: 8 * 1024, ways: 4, line_bytes: 64, latency: 12 },
        l1d_mshrs: 1,
        l2_mshrs: 1,
        ..MemoryConfig::default()
    };
    let config = CoreConfig { mem, ..CoreConfig::default() };
    let program = microkernels::pointer_chase(4096);
    let sim = Simulator::new(config.clone());
    let untapped = sim.run_with_warmup(&program, WARMUP, MEASURE);
    let mut sink = (StallTally::default(), CycleLog::with_capacity(32));
    let tapped =
        sim.run_source_with_sink(vpsim::isa::Executor::new(&program), WARMUP, MEASURE, &mut sink);
    assert_eq!(untapped, tapped);
    let report = sink.0.measured();
    check_conservation(&tapped, &report).unwrap();
    // The chase spends most of its time waiting on memory; idle-skip spans
    // must carry those cycles (one event per span, not per cycle).
    assert!(
        report.cause_cycles(vpsim::stats::stall::CycleCause::MemWait) > report.total_cycles() / 4,
        "expected a memory-bound attribution profile: {report:?}"
    );
    assert!(
        sink.1.total_events() < tapped.metrics.cycles * 40,
        "idle-skip spans should batch, not emit per skipped cycle"
    );
}

#[test]
fn cycle_log_ring_is_bounded() {
    let program = microkernels::strided_loop(64, 8);
    let mut sink = CycleLog::with_capacity(16);
    Simulator::new(CoreConfig::default()).run_source_with_sink(
        vpsim::isa::Executor::new(&program),
        0,
        5_000,
        &mut sink,
    );
    assert_eq!(sink.len(), 16, "ring must fill to capacity and stop growing");
    assert!(sink.total_events() > 16, "the run saw more events than the ring keeps");
    let tail = sink.tail(16);
    assert!(tail.windows(2).all(|w| w[0].seq <= w[1].seq || w[0].cycle <= w[1].cycle));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Arbitrary small scenarios — random predictor, recovery, sizing,
    /// kernel and warm-up — are byte-identical with the tap attached, and
    /// every one of them conserves.
    #[test]
    fn tap_is_invisible_for_arbitrary_scenarios(
        kind_sel in 0usize..11,
        reissue in 0usize..2,
        kernel_sel in 0usize..3,
        warmup in 0u64..800,
        measure in 400u64..2000,
        rob_sel in 0usize..3,
        fetch_sel in 0usize..2,
    ) {
        let kind = ALL_KINDS[kind_sel];
        let policy = if reissue == 1 {
            RecoveryPolicy::SelectiveReissue
        } else {
            RecoveryPolicy::SquashAtCommit
        };
        let program = match kernel_sel {
            0 => microkernels::strided_loop(64, 8),
            1 => microkernels::pointer_chase(512),
            _ => microkernels::matmul(6),
        };
        let (rob, iq) = [(64, 32), (128, 64), (256, 128)][rob_sel];
        let fetch = [4, 8][fetch_sel];
        let config = CoreConfig {
            rob_entries: rob,
            iq_entries: iq,
            fetch_width: fetch,
            issue_width: fetch,
            retire_width: fetch,
            ..CoreConfig::default()
        }
        .with_vp(VpConfig::enabled(kind, policy));
        let sim = Simulator::new(config);
        let untapped = sim.run_with_warmup(&program, warmup, measure);
        let mut sink = (StallTally::default(), CycleLog::with_capacity(32));
        let tapped = sim.run_source_with_sink(
            vpsim::isa::Executor::new(&program),
            warmup,
            measure,
            &mut sink,
        );
        prop_assert_eq!(untapped, tapped);
        let report = sink.0.measured();
        let conserved = check_conservation(&tapped, &report);
        prop_assert!(conserved.is_ok(), "{:?}/{:?} conservation broken: {:?}", kind, policy, conserved);
    }
}
