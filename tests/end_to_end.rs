//! Cross-crate integration tests: full programs through the functional
//! executor and the cycle-level core, exercising the paper's mechanisms
//! end to end.

use vpsim::core::{ConfidenceScheme, PredictorKind};
use vpsim::isa::{Executor, ProgramBuilder, Reg};
use vpsim::uarch::{CoreConfig, RecoveryPolicy, Simulator, VpConfig};
use vpsim::workloads::{all_benchmarks, benchmark, microkernels, WorkloadParams};

fn vp_config(kind: PredictorKind, recovery: RecoveryPolicy) -> CoreConfig {
    CoreConfig::default().with_vp(VpConfig::enabled(kind, recovery))
}

#[test]
fn every_benchmark_simulates_under_every_recovery_scheme() {
    let params = WorkloadParams::default();
    for b in all_benchmarks() {
        let program = (b.build)(&params);
        for recovery in [RecoveryPolicy::SquashAtCommit, RecoveryPolicy::SelectiveReissue] {
            let r = Simulator::new(vp_config(PredictorKind::VtageStride, recovery))
                .run(&program, 20_000);
            assert_eq!(r.metrics.instructions, 20_000, "{} under {recovery:?}", b.name);
            assert!(r.metrics.ipc() > 0.01, "{} IPC {}", b.name, r.metrics.ipc());
        }
    }
}

#[test]
fn simulation_is_deterministic_per_seed_across_predictors() {
    let program = (benchmark("gzip").unwrap().build)(&WorkloadParams::default());
    for kind in [PredictorKind::Lvp, PredictorKind::Vtage, PredictorKind::FcmStride] {
        let sim = Simulator::new(vp_config(kind, RecoveryPolicy::SquashAtCommit));
        let a = sim.run(&program, 30_000);
        let b = sim.run(&program, 30_000);
        assert_eq!(a, b, "{kind:?} must be deterministic");
    }
}

#[test]
fn oracle_dominates_every_real_predictor() {
    // The oracle is an upper bound: no real predictor may beat it on the
    // same program (modulo nothing — oracle never mispredicts and always
    // covers).
    let program = microkernels::fp_reduction(128);
    let oracle = Simulator::new(vp_config(PredictorKind::Oracle, RecoveryPolicy::SquashAtCommit))
        .run(&program, 50_000);
    for kind in [PredictorKind::Lvp, PredictorKind::TwoDeltaStride, PredictorKind::Vtage] {
        let real =
            Simulator::new(vp_config(kind, RecoveryPolicy::SquashAtCommit)).run(&program, 50_000);
        assert!(
            real.metrics.ipc() <= oracle.metrics.ipc() * 1.01,
            "{kind:?} ({}) beat the oracle ({})",
            real.metrics.ipc(),
            oracle.metrics.ipc()
        );
    }
}

#[test]
fn vp_never_corrupts_architectural_results() {
    // The functional executor is the ground truth; simulation must commit
    // exactly the instructions the executor produces, in order, regardless
    // of predictor aggressiveness. We verify indirectly: instruction counts
    // and determinism across VP on/off (the timing model replays the same
    // trace, so any ordering corruption would show up as a panic in the
    // predictor protocol or a deadlock).
    let program = microkernels::matmul(6);
    let functional: Vec<_> = Executor::new(&program).take(30_000).map(|d| d.seq).collect();
    assert_eq!(functional.len(), 30_000);
    let with_vp =
        Simulator::new(vp_config(PredictorKind::VtageStride, RecoveryPolicy::SquashAtCommit))
            .run(&program, 30_000);
    let without = Simulator::new(CoreConfig::default()).run(&program, 30_000);
    assert_eq!(with_vp.metrics.instructions, 30_000);
    assert_eq!(without.metrics.instructions, 30_000);
}

#[test]
fn tight_loop_has_high_back_to_back_fraction() {
    // §3.2: the motivation for VTAGE. A 3-µop loop refetches the same PCs
    // every cycle.
    let r = Simulator::new(CoreConfig::default()).run(&microkernels::tight_loop(), 30_000);
    assert!(
        r.back_to_back.fraction() > 0.3,
        "tight loop b2b fraction {}",
        r.back_to_back.fraction()
    );
}

#[test]
fn constant_stream_reaches_high_coverage_with_lvp() {
    // The kernel's loop has 4 eligible µops per iteration of which the
    // constant load is the LVP-predictable one: coverage ≈ 25 %.
    let r = Simulator::new(vp_config(PredictorKind::Lvp, RecoveryPolicy::SquashAtCommit))
        .run(&microkernels::constant_stream(), 50_000);
    assert!(r.vp.coverage() > 0.2, "coverage {}", r.vp.coverage());
    assert!(r.vp.accuracy() > 0.999, "accuracy {}", r.vp.accuracy());
}

#[test]
fn branch_correlated_values_need_vtage() {
    let program = microkernels::branch_correlated_values();
    let lvp = Simulator::new(vp_config(PredictorKind::Lvp, RecoveryPolicy::SquashAtCommit))
        .run(&program, 50_000);
    let vtage = Simulator::new(vp_config(PredictorKind::Vtage, RecoveryPolicy::SquashAtCommit))
        .run(&program, 50_000);
    // The alternating constant is invisible to LVP (it changes every
    // occurrence) but trivially captured by VTAGE's branch history.
    assert!(
        vtage.vp.correct_used > lvp.vp.correct_used * 2,
        "vtage {} vs lvp {} correct-used",
        vtage.vp.correct_used,
        lvp.vp.correct_used
    );
}

#[test]
fn fpc_squash_never_loses_badly_to_baseline_counters() {
    // The paper's §8.2.1 claim, on three bursty benchmarks: with FPC the
    // speedup is never materially below the baseline-counter speedup.
    let params = WorkloadParams::default();
    for name in ["crafty", "gobmk", "sjeng"] {
        let program = (benchmark(name).unwrap().build)(&params);
        let base = Simulator::new(CoreConfig::default()).run_with_warmup(&program, 10_000, 60_000);
        let mk = |scheme: ConfidenceScheme| {
            Simulator::new(CoreConfig::default().with_vp(VpConfig {
                kind: PredictorKind::Vtage,
                scheme,
                recovery: RecoveryPolicy::SquashAtCommit,
            }))
            .run_with_warmup(&program, 10_000, 60_000)
        };
        let with_baseline = mk(ConfidenceScheme::baseline());
        let with_fpc = mk(ConfidenceScheme::fpc_squash());
        let sp_base = vpsim::stats::speedup(&base.metrics, &with_baseline.metrics);
        let sp_fpc = vpsim::stats::speedup(&base.metrics, &with_fpc.metrics);
        assert!(
            sp_fpc >= sp_base - 0.02,
            "{name}: FPC {sp_fpc:.3} vs baseline counters {sp_base:.3}"
        );
        assert!(
            with_fpc.vp.accuracy() >= with_baseline.vp.accuracy() || with_fpc.vp.used < 100,
            "{name}: FPC accuracy must not regress"
        );
    }
}

#[test]
fn squash_storms_in_tight_loops_are_survived() {
    // Failure injection (paper §7.2.1 discusses repeated mispredictions on
    // in-flight occurrences): a tight loop whose value glitches every 64
    // iterations (longer than the pipeline's fetch-ahead depth, so the
    // hair-trigger counter does get confident) — the worst case for
    // squash-at-commit. The run must complete, stay correct, and record
    // many squashes.
    let mut b = ProgramBuilder::new();
    let (i, t, v) = (Reg::int(1), Reg::int(2), Reg::int(3));
    let limit = Reg::int(4);
    b.load_imm(limit, i64::MAX);
    let top = b.bind_label();
    b.addi(i, i, 1);
    b.shri(t, i, 6); // changes every 64 iterations
    b.mul(v, t, t); // VP target with bursty values
    b.add(Reg::int(5), Reg::int(5), v); // consumer
    b.blt(i, limit, top);
    b.halt();
    let program = b.build().unwrap();
    let r = Simulator::new(CoreConfig::default().with_vp(VpConfig {
        kind: PredictorKind::Lvp,
        scheme: ConfidenceScheme::full(1), // hair-trigger confidence
        recovery: RecoveryPolicy::SquashAtCommit,
    }))
    .run(&program, 80_000);
    assert_eq!(r.metrics.instructions, 80_000);
    assert!(r.vp_squashes > 100, "squash storm expected, got {}", r.vp_squashes);
    // And the same storm under selective reissue completes too.
    let r2 = Simulator::new(CoreConfig::default().with_vp(VpConfig {
        kind: PredictorKind::Lvp,
        scheme: ConfidenceScheme::full(1),
        recovery: RecoveryPolicy::SelectiveReissue,
    }))
    .run(&program, 80_000);
    assert_eq!(r2.metrics.instructions, 80_000);
    assert!(r2.reissued_uops > 100, "reissues expected, got {}", r2.reissued_uops);
    assert_eq!(r2.vp_squashes, 0);
}

#[test]
fn pointer_chase_is_memory_bound_and_oracle_breaks_it() {
    let program = microkernels::pointer_chase(1 << 15); // 256 KB > L1D
    let base = Simulator::new(CoreConfig::default()).run(&program, 40_000);
    let oracle = Simulator::new(vp_config(PredictorKind::Oracle, RecoveryPolicy::SquashAtCommit))
        .run(&program, 40_000);
    assert!(base.metrics.ipc() < 1.0, "chase must be slow, ipc {}", base.metrics.ipc());
    assert!(
        oracle.metrics.ipc() > base.metrics.ipc() * 1.5,
        "oracle must break the chain: {} vs {}",
        oracle.metrics.ipc(),
        base.metrics.ipc()
    );
}

#[test]
fn call_ladder_exercises_ras_without_target_misses() {
    let r = Simulator::new(CoreConfig::default()).run(&microkernels::call_ladder(), 40_000);
    // Returns are perfectly RAS-predictable here.
    let mpki = r.branch.target_mispredictions as f64 * 1000.0 / r.metrics.instructions as f64;
    assert!(mpki < 1.0, "target MPKI {mpki}");
}
