//! Property-based tests (proptest) on the predictor protocol, history
//! folding, storage arithmetic and the ISA round trips.

use proptest::prelude::*;
use vpsim::core::history::{fold, fold_value16};
use vpsim::core::{
    ConfidenceScheme, GDiff, HistoryState, Lvp, PredictCtx, Prediction, Predictor, PredictorKind,
    TwoDeltaStride, Vtage,
};
use vpsim::isa::{Executor, ProgramBuilder, Reg};

/// Drive an arbitrary predict/train/squash schedule against a predictor
/// and check protocol invariants hold (no panics, sane predictions).
fn run_schedule(p: &mut dyn Predictor, ops: &[(u8, u64, u64)]) {
    let mut seq = 0u64;
    let mut inflight: Vec<u64> = Vec::new(); // seqs predicted, not yet trained
    let mut hist = HistoryState::default();
    for &(op, pc_sel, value) in ops {
        match op % 3 {
            // predict
            0 => {
                let pc = 0x40 + (pc_sel % 8) * 4;
                let ctx = PredictCtx { seq, pc, hist, actual: Some(value) };
                let pred: Prediction = p.predict(&ctx);
                if pred.confident {
                    assert!(pred.value.is_some(), "confident prediction must carry a value");
                }
                inflight.push(seq);
                seq += 1;
                hist.push_branch(pc, value & 1 == 1);
            }
            // train oldest
            1 => {
                if !inflight.is_empty() {
                    let s = inflight.remove(0);
                    p.train(s, value);
                }
            }
            // squash a suffix
            _ => {
                if let Some(&oldest) = inflight.first() {
                    let boundary = oldest + (pc_sel % 4);
                    inflight.retain(|&s| s <= boundary);
                    p.squash_after(boundary);
                    seq = boundary + 1;
                }
            }
        }
    }
    // Drain.
    for s in inflight {
        p.train(s, 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn predictor_protocol_tolerates_arbitrary_schedules(
        ops in prop::collection::vec((0u8..3, 0u64..8, 0u64..1000), 1..200),
        kind_sel in 0usize..4,
    ) {
        let kind = [
            PredictorKind::Lvp,
            PredictorKind::TwoDeltaStride,
            PredictorKind::Fcm4,
            PredictorKind::Vtage,
        ][kind_sel];
        let mut p = kind.build(ConfidenceScheme::fpc_squash(), 99);
        run_schedule(p.as_mut(), &ops);
    }

    #[test]
    fn hybrid_and_gdiff_tolerate_arbitrary_schedules(
        ops in prop::collection::vec((0u8..3, 0u64..8, 0u64..1000), 1..150),
    ) {
        let mut h = PredictorKind::VtageStride.build(ConfidenceScheme::baseline(), 3);
        run_schedule(h.as_mut(), &ops);
        let mut g = GDiff::over_vtage(ConfidenceScheme::baseline(), 3);
        run_schedule(&mut g, &ops);
    }

    #[test]
    fn fold_output_fits_width(hist in any::<u128>(), len in 0u32..=128, bits in 1u32..=40) {
        let f = fold(hist, len, bits);
        prop_assert!(f < (1u64 << bits));
    }

    #[test]
    fn fold_ignores_bits_beyond_len(hist in any::<u128>(), len in 1u32..=100, bits in 1u32..=30) {
        let masked = hist & ((1u128 << len) - 1);
        prop_assert_eq!(fold(hist, len, bits), fold(masked, len, bits));
    }

    #[test]
    fn fold_value16_is_stable_and_total(v in any::<u64>()) {
        prop_assert_eq!(fold_value16(v), fold_value16(v));
    }

    #[test]
    fn confidence_counters_never_exceed_max(
        outcomes in prop::collection::vec(any::<bool>(), 1..500),
        seed in any::<u64>(),
    ) {
        let scheme = ConfidenceScheme::fpc_squash();
        let mut lfsr = vpsim::core::Lfsr::new(seed);
        let mut c = 0u8;
        for ok in outcomes {
            c = if ok { scheme.on_correct(c, &mut lfsr) } else { scheme.on_incorrect(c) };
            prop_assert!(c <= scheme.max());
        }
    }

    #[test]
    fn lvp_only_predicts_trained_values(values in prop::collection::vec(0u64..50, 10..100)) {
        // Whatever LVP confidently predicts must be a value it has seen.
        let mut p = Lvp::with_defaults(ConfidenceScheme::baseline(), 1);
        let mut seen = std::collections::HashSet::new();
        for (k, &v) in values.iter().enumerate() {
            let ctx = PredictCtx { seq: k as u64, pc: 0x40, ..Default::default() };
            if let Some(guess) = p.predict(&ctx).confident_value() {
                prop_assert!(seen.contains(&guess), "predicted unseen value {guess}");
            }
            p.train(k as u64, v);
            seen.insert(v);
        }
    }

    #[test]
    fn stride_predictions_follow_arithmetic_closure(
        start in 0u64..1000,
        stride in prop::sample::select(vec![1u64, 2, 3, 8, 64, u64::MAX /* -1 */]),
    ) {
        // On a pure arithmetic sequence every confident prediction is exact.
        let mut p = TwoDeltaStride::with_defaults(ConfidenceScheme::baseline(), 1);
        let mut v = start;
        for k in 0..64u64 {
            let ctx = PredictCtx { seq: k, pc: 0x10, ..Default::default() };
            if let Some(guess) = p.predict(&ctx).confident_value() {
                prop_assert_eq!(guess, v, "at occurrence {}", k);
            }
            p.train(k, v);
            v = v.wrapping_add(stride);
        }
    }

    #[test]
    fn vtage_storage_scales_with_geometry(base_pow in 6u32..12, comp_pow in 4u32..9) {
        let cfg = vpsim::core::VtageConfig {
            base_entries: 1 << base_pow,
            component_entries: 1 << comp_pow,
            history_lengths: vec![2, 4, 8],
            base_tag_bits: 10,
        };
        let v = Vtage::new(cfg, ConfidenceScheme::baseline(), 1);
        let bits = v.storage().total_bits();
        let expected_base = (1usize << base_pow) * 67;
        prop_assert!(bits > expected_base);
    }

    #[test]
    fn executor_programs_with_random_alu_ops_terminate(
        ops in prop::collection::vec((0u8..8, 1u8..8, 1u8..8, 1u8..8, -100i64..100), 1..60),
    ) {
        // Straight-line ALU programs always halt with exactly len+1 µops.
        let mut b = ProgramBuilder::new();
        for &(op, d, s1, s2, imm) in &ops {
            let (d, s1, s2) = (Reg::int(d), Reg::int(s1), Reg::int(s2));
            match op {
                0 => { b.add(d, s1, s2); }
                1 => { b.sub(d, s1, s2); }
                2 => { b.mul(d, s1, s2); }
                3 => { b.div(d, s1, s2); }
                4 => { b.xor(d, s1, s2); }
                5 => { b.addi(d, s1, imm); }
                6 => { b.shli(d, s1, (imm & 63).abs()); }
                _ => { b.load_imm(d, imm); }
            }
        }
        b.halt();
        let p = b.build().unwrap();
        let n = Executor::new(&p).count();
        prop_assert_eq!(n, ops.len() + 1);
    }

    #[test]
    fn sparse_memory_read_write_laws(
        writes in prop::collection::vec((0u64..1_000_000, any::<u64>()), 1..100),
    ) {
        use vpsim::isa::SparseMemory;
        let mut m = SparseMemory::new();
        let mut model = std::collections::HashMap::new();
        for &(addr, val) in &writes {
            m.write(addr, val);
            model.insert(addr >> 3, val);
        }
        for (&word, &val) in &model {
            prop_assert_eq!(m.read(word << 3), val);
        }
    }
}
