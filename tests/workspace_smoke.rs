//! Workspace smoke test: every `PredictorKind` × `RecoveryPolicy`
//! combination must simulate a microkernel without panicking, retire the
//! full instruction budget, and produce bit-identical results across two
//! independent runs (the whole stack is seeded and must be deterministic).

use vpsim::core::PredictorKind;
use vpsim::uarch::{CoreConfig, RecoveryPolicy, Simulator, VpConfig};
use vpsim::workloads::microkernels;

/// Every predictor the workspace can instantiate, including extension
/// baselines and the oracle (Figure 3 upper bound).
const ALL_KINDS: [PredictorKind; 11] = [
    PredictorKind::Lvp,
    PredictorKind::TwoDeltaStride,
    PredictorKind::PerPathStride,
    PredictorKind::Fcm4,
    PredictorKind::DFcm4,
    PredictorKind::Vtage,
    PredictorKind::VtageStride,
    PredictorKind::FcmStride,
    PredictorKind::GDiffVtage,
    PredictorKind::SagLvp,
    PredictorKind::Oracle,
];

const ALL_POLICIES: [RecoveryPolicy; 2] =
    [RecoveryPolicy::SquashAtCommit, RecoveryPolicy::SelectiveReissue];

const BUDGET: u64 = 3_000;

#[test]
fn every_predictor_policy_combination_runs_and_is_deterministic() {
    // Strided loads + a loop branch exercise prediction, validation and
    // recovery on every predictor without needing a long warm-up.
    let program = microkernels::strided_loop(64, 8);
    for kind in ALL_KINDS {
        for policy in ALL_POLICIES {
            let config = CoreConfig::default().with_vp(VpConfig::enabled(kind, policy));
            let first = Simulator::new(config.clone()).run(&program, BUDGET);
            assert_eq!(
                first.metrics.instructions, BUDGET,
                "{kind:?}/{policy:?} did not retire the full budget"
            );
            assert!(first.metrics.cycles > 0, "{kind:?}/{policy:?} reported a zero-cycle run");
            let second = Simulator::new(config).run(&program, BUDGET);
            assert_eq!(first, second, "{kind:?}/{policy:?} is not deterministic across runs");
        }
    }
}

#[test]
fn baseline_without_vp_runs_and_is_deterministic() {
    let program = microkernels::tight_loop();
    let first = Simulator::new(CoreConfig::default()).run(&program, BUDGET);
    let second = Simulator::new(CoreConfig::default()).run(&program, BUDGET);
    assert_eq!(first.metrics.instructions, BUDGET);
    assert_eq!(first, second, "baseline core is not deterministic");
}
